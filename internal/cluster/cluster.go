// Package cluster simulates the distributed system the replication
// algorithms serve: sites issuing reads against their nearest replica and
// writes through primary copies, a monitor site collecting per-object
// statistics each epoch and re-optimising the replication scheme, object
// migration with its own transfer costs, and site-failure injection.
//
// The simulator is a discrete-event system driven by drp/internal/simevent.
// Its transfer-cost accounting follows the paper's policy mechanically —
// each read is served from the nearest replica, each write ships to the
// primary which broadcasts to the other replicas — so with the full traffic
// of a measurement period and a static scheme, the measured NTC equals the
// analytic D of eq. 4 exactly. That equivalence is tested, closing the loop
// between the cost model the optimisers minimise and the system behaviour
// a deployment would observe.
package cluster

import (
	"fmt"
	"time"

	"drp/internal/agra"
	"drp/internal/core"
	"drp/internal/gra"
	"drp/internal/metrics"
	"drp/internal/solver"
	"drp/internal/spans"
	"drp/internal/workload"
)

// Policy selects how the monitor reacts at epoch boundaries.
type Policy int

// Monitor policies.
const (
	// PolicyNone never adapts: the initial scheme serves every epoch.
	PolicyNone Policy = iota + 1
	// PolicySRA recomputes the scheme from scratch with the greedy.
	PolicySRA
	// PolicyAGRA adapts only changed objects (micro-GAs + transcription).
	PolicyAGRA
	// PolicyAGRAMini is PolicyAGRA followed by 5 mini-GRA generations.
	PolicyAGRAMini
	// PolicyGRA re-runs the full genetic algorithm every epoch.
	PolicyGRA
)

func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicySRA:
		return "sra"
	case PolicyAGRA:
		return "agra"
	case PolicyAGRAMini:
		return "agra+mini"
	case PolicyGRA:
		return "gra"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Failure takes a site offline for a span of epochs [From, To).
type Failure struct {
	Site     int
	From, To int
}

// Config drives a cluster simulation.
type Config struct {
	// Epochs is the number of measurement periods to simulate.
	Epochs int
	// Policy selects the monitor's adaptation strategy.
	Policy Policy
	// Drift, if non-nil, perturbs the read/write patterns at the start of
	// every epoch after the first (Section 6.3 style).
	Drift *workload.ChangeSpec
	// Threshold is the pattern-change detection factor: an object is
	// reported to the adaptive monitor when its observed read or write
	// total grew or shrank by at least this factor since the scheme was
	// last tuned for it (e.g. 2.0). Only used by the AGRA policies.
	Threshold float64
	// Failures lists injected site outages.
	Failures []Failure
	// GRA and AGRA budgets for the adapting policies.
	GRAParams  gra.Params
	AGRAParams agra.Params
	// EpochTimeout caps each epoch's re-optimisation wall-clock: a monitor
	// that blows it keeps serving the current scheme (no migration, no
	// re-tuning of the change detector) and the miss is recorded in
	// EpochStats. 0 means unbounded.
	EpochTimeout time.Duration
	// AdaptBudget caps each epoch's re-optimisation at this many cost-model
	// evaluations, with the same degradation behaviour. 0 means unbounded.
	AdaptBudget int
	// Metrics, when non-nil, receives the epoch instrument families
	// (drp_cluster_*) and per-iteration solver progress from the monitor's
	// re-optimisations (drp_solver_*). Instrumentation never feeds back
	// into the simulation, so instrumented runs are bit-identical to bare
	// ones.
	Metrics *metrics.Registry
	// Events, when non-nil, receives one structured "cluster.epoch" event
	// per epoch plus the monitor's solver progress stream as JSONL.
	Events *metrics.EventLog
	// Tracer, when non-nil, records one epoch root span per measurement
	// period with adapt and serve children; the adapt child carries the
	// epoch's migration NTC and the serve child its serve NTC, so a span
	// file sums to the run's exact accounted transfer cost.
	Tracer *spans.Tracer
	// Seed makes runs reproducible.
	Seed uint64
	// OnEpoch, when non-nil, runs after every finished epoch with the
	// scheme then in force and the epoch's stats. Durable monitors persist
	// their placement decision here (see drp/internal/store.Journal); an
	// error aborts the run. The scheme is a clone — the hook may retain it.
	OnEpoch func(epoch int, scheme *core.Scheme, stats *EpochStats) error
}

func (cfg Config) validate(p *core.Problem) error {
	switch {
	case cfg.Epochs < 1:
		return fmt.Errorf("cluster: need at least one epoch, got %d", cfg.Epochs)
	case cfg.Policy < PolicyNone || cfg.Policy > PolicyGRA:
		return fmt.Errorf("cluster: unknown policy %d", int(cfg.Policy))
	case cfg.Threshold < 0:
		return fmt.Errorf("cluster: negative threshold %v", cfg.Threshold)
	case cfg.EpochTimeout < 0:
		return fmt.Errorf("cluster: negative epoch timeout %v", cfg.EpochTimeout)
	case cfg.AdaptBudget < 0:
		return fmt.Errorf("cluster: negative adapt budget %d", cfg.AdaptBudget)
	}
	for _, f := range cfg.Failures {
		if f.Site < 0 || f.Site >= p.Sites() {
			return fmt.Errorf("cluster: failure site %d out of range", f.Site)
		}
		if f.From < 0 || f.To < f.From {
			return fmt.Errorf("cluster: bad failure window [%d,%d)", f.From, f.To)
		}
	}
	return nil
}

// EpochStats reports one epoch of simulated traffic.
type EpochStats struct {
	Epoch int

	// Reads/Writes are the numbers of requests served.
	Reads, Writes int64
	// FailedReads/FailedWrites could not be served because every replica
	// (or the primary) was offline.
	FailedReads, FailedWrites int64

	// ServeNTC is the measured transfer cost of serving requests; ModelNTC
	// is eq. 4's prediction for the same patterns and scheme (they are
	// equal when no site failed during the epoch). ReadNTC/WriteNTC split
	// ServeNTC by request kind (ReadNTC + WriteNTC == ServeNTC always).
	ServeNTC int64
	ReadNTC  int64
	WriteNTC int64
	ModelNTC int64
	// MigrationNTC is the cost of shipping objects for scheme changes
	// applied at the start of the epoch, and Migrations the replica count
	// that moved.
	MigrationNTC int64
	Migrations   int

	// MeanReadCost is the average per-read transfer cost, the paper's
	// proxy for response time; ReadCostP50/P95/Max are distribution
	// percentiles of the same quantity.
	MeanReadCost float64
	ReadCostP50  int64
	ReadCostP95  int64
	ReadCostMax  int64
	// Savings is the % NTC saved versus serving the epoch's patterns with
	// primaries only (migration cost included).
	Savings float64

	// Changed is the number of objects the monitor flagged as shifted;
	// AdaptTime is how long the monitor's re-optimisation took.
	Changed   int
	AdaptTime time.Duration
	// AdaptEvaluations counts the re-optimisation's cost-model evaluations
	// and AdaptStopped why it ended. AdaptDegraded is set when the epoch
	// deadline or budget fired: the freshly computed scheme is discarded
	// and the epoch is served — and its NTC accounted per eq. 4 — under
	// the unchanged current scheme.
	AdaptEvaluations int
	AdaptStopped     solver.StopReason
	AdaptDegraded    bool
}

// Result is a full simulation run.
type Result struct {
	Epochs []EpochStats
	// FinalScheme is the scheme in force after the last epoch.
	FinalScheme *core.Scheme
}

// TotalServeNTC sums the serving cost over all epochs.
func (r *Result) TotalServeNTC() int64 {
	var total int64
	for _, e := range r.Epochs {
		total += e.ServeNTC
	}
	return total
}

// TotalNTC sums serving and migration cost over all epochs.
func (r *Result) TotalNTC() int64 {
	total := r.TotalServeNTC()
	for _, e := range r.Epochs {
		total += e.MigrationNTC
	}
	return total
}

// TotalMigrations sums the replica moves over all epochs.
func (r *Result) TotalMigrations() int {
	total := 0
	for _, e := range r.Epochs {
		total += e.Migrations
	}
	return total
}

// TotalMigrationNTC sums the transfer cost of those moves.
func (r *Result) TotalMigrationNTC() int64 {
	var total int64
	for _, e := range r.Epochs {
		total += e.MigrationNTC
	}
	return total
}

// DegradedEpochs counts the epochs whose re-optimisation missed its
// deadline or budget and kept serving the previous scheme.
func (r *Result) DegradedEpochs() int {
	total := 0
	for _, e := range r.Epochs {
		if e.AdaptDegraded {
			total++
		}
	}
	return total
}
