package cluster

import (
	"drp/internal/metrics"
)

// clusterInstruments caches the drp_cluster_* instrument handles one
// simulation records into. Creating the struct registers every family, so
// an exposition endpoint shows the full surface from the first scrape even
// before an epoch completes.
type clusterInstruments struct {
	epochs       *metrics.Counter
	degraded     *metrics.Counter
	reads        *metrics.Counter
	writes       *metrics.Counter
	failedReads  *metrics.Counter
	failedWrites *metrics.Counter
	serveRead    *metrics.Counter
	serveWrite   *metrics.Counter
	migrations   *metrics.Counter
	migrationNTC *metrics.Counter
	changed      *metrics.Counter
	adaptEvals   *metrics.Counter
	adaptSeconds *metrics.Histogram
}

func newClusterInstruments(reg *metrics.Registry) *clusterInstruments {
	return &clusterInstruments{
		epochs:       reg.Counter("drp_cluster_epochs_total", "Measurement periods simulated.", nil),
		degraded:     reg.Counter("drp_cluster_degraded_epochs_total", "Epochs whose re-optimisation missed its deadline or budget and kept the previous scheme.", nil),
		reads:        reg.Counter("drp_cluster_requests_total", "Requests served.", metrics.Labels{"op": "read"}),
		writes:       reg.Counter("drp_cluster_requests_total", "Requests served.", metrics.Labels{"op": "write"}),
		failedReads:  reg.Counter("drp_cluster_failed_requests_total", "Requests lost to site failures.", metrics.Labels{"op": "read"}),
		failedWrites: reg.Counter("drp_cluster_failed_requests_total", "Requests lost to site failures.", metrics.Labels{"op": "write"}),
		serveRead:    reg.Counter("drp_cluster_serve_ntc_total", "Transfer cost of serving requests, by request kind.", metrics.Labels{"op": "read"}),
		serveWrite:   reg.Counter("drp_cluster_serve_ntc_total", "Transfer cost of serving requests, by request kind.", metrics.Labels{"op": "write"}),
		migrations:   reg.Counter("drp_cluster_migrations_total", "Replicas moved by scheme changes.", nil),
		migrationNTC: reg.Counter("drp_cluster_migration_ntc_total", "Transfer cost of shipping replicas for scheme changes.", nil),
		changed:      reg.Counter("drp_cluster_changed_objects_total", "Objects the monitor's change detector flagged.", nil),
		adaptEvals:   reg.Counter("drp_cluster_adapt_evaluations_total", "Cost-model evaluations spent on epoch re-optimisations.", nil),
		adaptSeconds: reg.Histogram("drp_cluster_adapt_seconds", "Wall-clock time of each epoch's re-optimisation.", metrics.LatencyBuckets(), nil),
	}
}

// RegisterMetricFamilies pre-creates the drp_cluster_* families in reg at
// zero, for endpoints that must expose the full surface before a
// simulation has recorded anything.
func RegisterMetricFamilies(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	newClusterInstruments(reg)
}
