package bitset

// FuzzBitsetOps drives two Sets through an arbitrary op stream while
// mirroring every mutation in plain []bool models, then compares the whole
// observable API surface. The word-packed arithmetic (masks at word
// boundaries, spans, trailing-zero scans) is exactly the code a table-driven
// test tends to under-exercise.

import (
	"testing"
)

func FuzzBitsetOps(f *testing.F) {
	f.Add(uint8(63), []byte{0, 5, 0, 2, 9, 0, 4, 10, 60})
	f.Add(uint8(1), []byte{2, 0, 0})
	f.Add(uint8(130), []byte{0, 64, 0, 4, 0, 129, 3, 65, 1})
	f.Fuzz(func(t *testing.T, size uint8, ops []byte) {
		n := int(size)%130 + 1 // spans one, two and three words
		a, b := New(n), New(n)
		ma, mb := make([]bool, n), make([]bool, n)
		for j := 0; j+2 < len(ops); j += 3 {
			op, x, y := ops[j]%8, int(ops[j+1]), int(ops[j+2])
			i := x % n
			switch op {
			case 0:
				a.Set(i)
				ma[i] = true
			case 1:
				a.Clear(i)
				ma[i] = false
			case 2:
				got := a.Flip(i)
				ma[i] = !ma[i]
				if got != ma[i] {
					t.Fatalf("Flip(%d) returned %v, model says %v", i, got, ma[i])
				}
			case 3:
				v := y%2 == 1
				a.SetTo(i, v)
				ma[i] = v
			case 4:
				lo, hi := x%(n+1), y%(n+1)
				if lo > hi {
					lo, hi = hi, lo
				}
				a.SwapRange(b, lo, hi)
				for p := lo; p < hi; p++ {
					ma[p], mb[p] = mb[p], ma[p]
				}
			case 5:
				a.CopyFrom(b)
				copy(ma, mb)
			case 6:
				a.Reset()
				for p := range ma {
					ma[p] = false
				}
			case 7:
				b.SetTo(i, y%2 == 0)
				mb[i] = y%2 == 0
			}
		}
		for name, pair := range map[string]struct {
			s *Set
			m []bool
		}{"a": {a, ma}, "b": {b, mb}} {
			s, m := pair.s, pair.m
			count := 0
			for i, v := range m {
				if s.Test(i) != v {
					t.Fatalf("%s: bit %d is %v, model says %v", name, i, s.Test(i), v)
				}
				if v {
					count++
				}
			}
			if s.Count() != count {
				t.Fatalf("%s: Count %d, model says %d", name, s.Count(), count)
			}
			if !s.Equal(FromBools(m)) {
				t.Fatalf("%s: Equal(FromBools(model)) is false", name)
			}
			if !s.Clone().Equal(s) {
				t.Fatalf("%s: clone differs", name)
			}
			// NextSet chain enumerates exactly the model's set bits.
			want := make([]int, 0, count)
			for i, v := range m {
				if v {
					want = append(want, i)
				}
			}
			got := s.OnesInto(nil, 0, n)
			if len(got) != len(want) {
				t.Fatalf("%s: OnesInto found %d bits, model has %d", name, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: OnesInto[%d]=%d, model says %d", name, i, got[i], want[i])
				}
			}
			if idx := s.NextSet(n - 1); count > 0 && m[n-1] {
				if idx != n-1 {
					t.Fatalf("%s: NextSet(n-1)=%d with last bit set", name, idx)
				}
			}
			// CountRange against the model on word-straddling windows.
			for _, r := range [][2]int{{0, n}, {n / 3, 2 * n / 3}, {n / 2, n}} {
				wantC := 0
				for i := r[0]; i < r[1]; i++ {
					if m[i] {
						wantC++
					}
				}
				if c := s.CountRange(r[0], r[1]); c != wantC {
					t.Fatalf("%s: CountRange[%d,%d)=%d, model says %d", name, r[0], r[1], c, wantC)
				}
			}
		}
	})
}
