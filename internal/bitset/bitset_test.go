package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsEmpty(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		s := New(n)
		if s.Len() != n {
			t.Errorf("New(%d).Len() = %d", n, s.Len())
		}
		if s.Count() != 0 {
			t.Errorf("New(%d).Count() = %d, want 0", n, s.Count())
		}
	}
}

func TestSetTestClearFlip(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		s.Clear(i)
		if s.Test(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
		if got := s.Flip(i); !got || !s.Test(i) {
			t.Fatalf("Flip(%d) = %v, Test = %v; want true, true", i, got, s.Test(i))
		}
		if got := s.Flip(i); got || s.Test(i) {
			t.Fatalf("second Flip(%d) = %v, Test = %v; want false, false", i, got, s.Test(i))
		}
	}
}

func TestSetTo(t *testing.T) {
	s := New(10)
	s.SetTo(3, true)
	if !s.Test(3) {
		t.Fatal("SetTo(3, true) did not set")
	}
	s.SetTo(3, false)
	if s.Test(3) {
		t.Fatal("SetTo(3, false) did not clear")
	}
}

func TestCountAndCountRange(t *testing.T) {
	s := New(200)
	idx := []int{0, 5, 63, 64, 100, 150, 199}
	for _, i := range idx {
		s.Set(i)
	}
	if got := s.Count(); got != len(idx) {
		t.Fatalf("Count = %d, want %d", got, len(idx))
	}
	tests := []struct {
		from, to, want int
	}{
		{0, 200, 7},
		{0, 0, 0},
		{0, 1, 1},
		{1, 5, 0},
		{5, 64, 2},
		{64, 65, 1},
		{65, 199, 2},
		{199, 200, 1},
	}
	for _, tt := range tests {
		if got := s.CountRange(tt.from, tt.to); got != tt.want {
			t.Errorf("CountRange(%d,%d) = %d, want %d", tt.from, tt.to, got, tt.want)
		}
	}
}

func TestCountRangeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New(317)
	for i := 0; i < s.Len(); i++ {
		if rng.Intn(3) == 0 {
			s.Set(i)
		}
	}
	for trial := 0; trial < 200; trial++ {
		a, b := rng.Intn(s.Len()+1), rng.Intn(s.Len()+1)
		if a > b {
			a, b = b, a
		}
		want := 0
		for i := a; i < b; i++ {
			if s.Test(i) {
				want++
			}
		}
		if got := s.CountRange(a, b); got != want {
			t.Fatalf("CountRange(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(70)
	s.Set(10)
	c := s.Clone()
	c.Set(20)
	if s.Test(20) {
		t.Fatal("mutating clone affected original")
	}
	if !c.Test(10) {
		t.Fatal("clone lost original bit")
	}
}

func TestCopyFromAndEqual(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(3)
	a.Set(99)
	if a.Equal(b) {
		t.Fatal("different sets reported equal")
	}
	b.CopyFrom(a)
	if !a.Equal(b) {
		t.Fatal("CopyFrom result not equal")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone not equal to source")
	}
	if a.Equal(New(101)) {
		t.Fatal("sets of different lengths reported equal")
	}
}

func TestReset(t *testing.T) {
	s := New(128)
	for i := 0; i < 128; i += 3 {
		s.Set(i)
	}
	s.Reset()
	if s.Count() != 0 {
		t.Fatalf("Count after Reset = %d", s.Count())
	}
}

func TestSwapRange(t *testing.T) {
	a, b := New(130), New(130)
	for i := 0; i < 130; i += 2 {
		a.Set(i) // a = even bits
	}
	for i := 1; i < 130; i += 2 {
		b.Set(i) // b = odd bits
	}
	a.SwapRange(b, 40, 90)
	for i := 0; i < 130; i++ {
		inSwap := i >= 40 && i < 90
		wantA := (i%2 == 0) != inSwap
		if a.Test(i) != wantA {
			t.Fatalf("a bit %d = %v, want %v", i, a.Test(i), wantA)
		}
		wantB := (i%2 == 1) != inSwap
		if b.Test(i) != wantB {
			t.Fatalf("b bit %d = %v, want %v", i, b.Test(i), wantB)
		}
	}
}

func TestSwapRangeEmptyAndFull(t *testing.T) {
	a, b := New(64), New(64)
	a.Set(5)
	b.Set(6)
	a.SwapRange(b, 10, 10) // empty range: no-op
	if !a.Test(5) || !b.Test(6) || a.Test(6) || b.Test(5) {
		t.Fatal("empty SwapRange changed bits")
	}
	a.SwapRange(b, 0, 64)
	if !a.Test(6) || !b.Test(5) || a.Test(5) || b.Test(6) {
		t.Fatal("full SwapRange did not exchange bits")
	}
}

func TestSwapRangeIsInvolution(t *testing.T) {
	f := func(seed int64, fromRaw, toRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 150
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		from := int(fromRaw) % (n + 1)
		to := int(toRaw) % (n + 1)
		if from > to {
			from, to = to, from
		}
		ac, bc := a.Clone(), b.Clone()
		a.SwapRange(b, from, to)
		a.SwapRange(b, from, to)
		return a.Equal(ac) && b.Equal(bc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNextSet(t *testing.T) {
	s := New(200)
	for _, i := range []int{3, 64, 130, 199} {
		s.Set(i)
	}
	tests := []struct{ from, want int }{
		{0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 130}, {131, 199}, {199, 199}, {-5, 3},
	}
	for _, tt := range tests {
		if got := s.NextSet(tt.from); got != tt.want {
			t.Errorf("NextSet(%d) = %d, want %d", tt.from, got, tt.want)
		}
	}
	if got := s.NextSet(200); got != -1 {
		t.Errorf("NextSet past end = %d, want -1", got)
	}
	if got := New(10).NextSet(0); got != -1 {
		t.Errorf("NextSet on empty = %d, want -1", got)
	}
}

func TestNextSetEnumeratesAll(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(300)
		want := make([]int, 0)
		for i := 0; i < 300; i++ {
			if rng.Intn(4) == 0 {
				s.Set(i)
				want = append(want, i)
			}
		}
		got := s.OnesInto(nil, 0, 300)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromBoolsAndString(t *testing.T) {
	s := FromBools([]bool{true, false, true, true})
	if got := s.String(); got != "1011" {
		t.Fatalf("String() = %q, want 1011", got)
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
}

func TestPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("New(-1)", func() { New(-1) })
	assertPanics("CountRange reversed", func() { New(10).CountRange(5, 2) })
	assertPanics("SwapRange length mismatch", func() { New(10).SwapRange(New(11), 0, 5) })
	assertPanics("CopyFrom length mismatch", func() { New(10).CopyFrom(New(11)) })
	assertPanics("SwapRange out of bounds", func() { New(10).SwapRange(New(10), 0, 11) })
}
