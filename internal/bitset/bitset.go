// Package bitset provides a dense, fixed-length bit vector.
//
// It backs the genetic-algorithm chromosomes and the replication matrices of
// the DRP solvers, where the hot operations are single-bit tests, flips,
// range copies (crossover) and population-sized clones.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-length bit vector. The zero value is an empty set of length
// zero; use New to create a set of a given length.
type Set struct {
	words []uint64
	n     int
}

// New returns a Set of length n with all bits cleared.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative length")
	}
	return &Set{
		words: make([]uint64, (n+wordBits-1)/wordBits),
		n:     n,
	}
}

// FromBools builds a Set from a slice of booleans.
func FromBools(vals []bool) *Set {
	s := New(len(vals))
	for i, v := range vals {
		if v {
			s.Set(i)
		}
	}
	return s
}

// Len returns the number of bits in the set.
func (s *Set) Len() int { return s.n }

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set sets bit i to 1.
func (s *Set) Set(i int) {
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to 0.
func (s *Set) Clear(i int) {
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Flip inverts bit i and returns its new value.
func (s *Set) Flip(i int) bool {
	s.words[i/wordBits] ^= 1 << (uint(i) % wordBits)
	return s.Test(i)
}

// SetTo sets bit i to v.
func (s *Set) SetTo(i int, v bool) {
	if v {
		s.Set(i)
	} else {
		s.Clear(i)
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// CountRange returns the number of set bits in [from, to).
func (s *Set) CountRange(from, to int) int {
	if from < 0 || to > s.n || from > to {
		panic(fmt.Sprintf("bitset: bad range [%d,%d) for length %d", from, to, s.n))
	}
	total := 0
	for i := from; i < to; {
		w := i / wordBits
		off := uint(i) % wordBits
		span := wordBits - int(off)
		if rem := to - i; rem < span {
			span = rem
		}
		mask := ^uint64(0) >> (wordBits - uint(span)) << off
		total += bits.OnesCount64(s.words[w] & mask)
		i += span
	}
	return total
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	out := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(out.words, s.words)
	return out
}

// CopyFrom overwrites this set's bits with those of other. Both sets must
// have the same length.
func (s *Set) CopyFrom(other *Set) {
	if s.n != other.n {
		panic("bitset: length mismatch in CopyFrom")
	}
	copy(s.words, other.words)
}

// Reset clears every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// SwapRange exchanges bits [from, to) between s and other. The sets must
// have the same length. It is the crossover primitive.
func (s *Set) SwapRange(other *Set, from, to int) {
	if s.n != other.n {
		panic("bitset: length mismatch in SwapRange")
	}
	if from < 0 || to > s.n || from > to {
		panic(fmt.Sprintf("bitset: bad range [%d,%d) for length %d", from, to, s.n))
	}
	for i := from; i < to; {
		w := i / wordBits
		off := uint(i) % wordBits
		span := wordBits - int(off)
		if rem := to - i; rem < span {
			span = rem
		}
		mask := ^uint64(0) >> (wordBits - uint(span)) << off
		diff := (s.words[w] ^ other.words[w]) & mask
		s.words[w] ^= diff
		other.words[w] ^= diff
		i += span
	}
}

// Equal reports whether both sets have identical lengths and bits.
func (s *Set) Equal(other *Set) bool {
	if s.n != other.n {
		return false
	}
	for i, w := range s.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none. It allows iterating set bits without testing each index.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	w := i / wordBits
	word := s.words[w] >> (uint(i) % wordBits)
	if word != 0 {
		idx := i + bits.TrailingZeros64(word)
		if idx < s.n {
			return idx
		}
		return -1
	}
	for w++; w < len(s.words); w++ {
		if s.words[w] != 0 {
			idx := w*wordBits + bits.TrailingZeros64(s.words[w])
			if idx < s.n {
				return idx
			}
			return -1
		}
	}
	return -1
}

// OnesInto appends the indices of all set bits in [from, to) to dst and
// returns the extended slice. It is allocation-free when dst has capacity.
func (s *Set) OnesInto(dst []int, from, to int) []int {
	for i := s.NextSet(from); i >= 0 && i < to; i = s.NextSet(i + 1) {
		dst = append(dst, i)
	}
	return dst
}

// String renders the set as a string of '0'/'1' runes, bit 0 first.
func (s *Set) String() string {
	var b strings.Builder
	b.Grow(s.n)
	for i := 0; i < s.n; i++ {
		if s.Test(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
