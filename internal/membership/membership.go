// Package membership maintains the control plane's notion of which sites
// are part of the cluster: an epoch-numbered View over a fixed universe of
// potential sites, mutated by Join and Leave events, with the
// member-to-member transfer-cost matrix C(i,j) kept up to date
// incrementally as the view changes.
//
// The universe is a netsim.Topology: the set of sites that could ever
// exist, with the physical links between them. A View selects the subset
// that is currently serving; distances between members are shortest paths
// through the member-induced subgraph, so a departed site also stops
// forwarding traffic. Joins only ever shorten paths and are absorbed with
// one single-source shortest-path pass plus an all-pairs relaxation;
// leaves re-run the pass only from sources whose shortest path could have
// crossed the departed site. The incremental matrix is always identical to
// a from-scratch recomputation (tested), it just does less work.
package membership

import (
	"fmt"
	"sort"
	"sync"

	"drp/internal/netsim"
)

// View is one epoch of cluster membership: the sorted universe indices of
// the sites currently serving. Epochs are assigned by the Tracker and
// increase by exactly one per membership event, so a plan carrying a view
// can be ordered against any other.
type View struct {
	Epoch   int   `json:"epoch"`
	Members []int `json:"members"`
}

// Has reports whether site is a member of the view.
func (v View) Has(site int) bool {
	i := sort.SearchInts(v.Members, site)
	return i < len(v.Members) && v.Members[i] == site
}

// Clone returns a deep copy.
func (v View) Clone() View {
	return View{Epoch: v.Epoch, Members: append([]int(nil), v.Members...)}
}

// Equal reports whether two views have the same epoch and member set.
func (v View) Equal(o View) bool {
	if v.Epoch != o.Epoch || len(v.Members) != len(o.Members) {
		return false
	}
	for i, m := range v.Members {
		if o.Members[i] != m {
			return false
		}
	}
	return true
}

// SameMembers reports whether two views contain the same sites, ignoring
// their epochs.
func (v View) SameMembers(o View) bool {
	if len(v.Members) != len(o.Members) {
		return false
	}
	for i, m := range v.Members {
		if o.Members[i] != m {
			return false
		}
	}
	return true
}

// Index returns the dense index of every member: Index()[site] is the row
// the site occupies in a view-restricted problem.
func (v View) Index() map[int]int {
	idx := make(map[int]int, len(v.Members))
	for d, site := range v.Members {
		idx[site] = d
	}
	return idx
}

func (v View) String() string {
	return fmt.Sprintf("view{epoch %d, members %v}", v.Epoch, v.Members)
}

// EventKind distinguishes membership transitions.
type EventKind int

// Membership transitions.
const (
	Join EventKind = iota + 1
	Leave
)

func (k EventKind) String() string {
	switch k {
	case Join:
		return "join"
	case Leave:
		return "leave"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one membership transition, stamped with the epoch of the view
// it produced.
type Event struct {
	Kind  EventKind
	Site  int
	Epoch int
}

// unreachable marks a pair with no path inside the member subgraph (or a
// pair touching a non-member). Kept well below overflow so relaxations
// cannot wrap.
const unreachable = int64(1) << 60

// Tracker owns the view and its distance matrix. All methods are safe for
// concurrent use; subscriber callbacks run synchronously inside JoinSite /
// LeaveSite — in subscription order, every view exactly once, epochs
// ascending — but outside the state lock, so a callback may read the
// tracker (View, Cost, SubMatrix). A callback must not mutate membership
// reentrantly.
type Tracker struct {
	// eventMu serialises membership mutations end-to-end (state change +
	// notification), which is what keeps subscriber callbacks in epoch
	// order without holding mu across them.
	eventMu sync.Mutex

	mu   sync.Mutex
	topo *netsim.Topology
	view View
	// dist is universe-shaped (M×M); entries are valid only when both
	// endpoints are members, and unreachable otherwise.
	dist []int64
	subs []func(View)

	// sourcePasses counts single-source shortest-path runs, so tests can
	// assert the incremental maintenance does less work than recomputing.
	sourcePasses int
}

// NewTracker builds a tracker over the universe topology with the given
// initial members (which must induce a connected subgraph). The initial
// view has epoch 0.
func NewTracker(topo *netsim.Topology, members []int) (*Tracker, error) {
	if topo == nil {
		return nil, fmt.Errorf("membership: nil topology")
	}
	ms := append([]int(nil), members...)
	sort.Ints(ms)
	if len(ms) == 0 {
		return nil, fmt.Errorf("membership: need at least one initial member")
	}
	for i, m := range ms {
		if m < 0 || m >= topo.Sites {
			return nil, fmt.Errorf("membership: member %d outside universe of %d sites", m, topo.Sites)
		}
		if i > 0 && ms[i-1] == m {
			return nil, fmt.Errorf("membership: duplicate member %d", m)
		}
	}
	t := &Tracker{
		topo: topo,
		view: View{Epoch: 0, Members: ms},
		dist: make([]int64, topo.Sites*topo.Sites),
	}
	for i := range t.dist {
		t.dist[i] = unreachable
	}
	member := t.memberSet()
	for _, src := range ms {
		row := t.dijkstra(src, member)
		t.setRow(src, row)
	}
	if err := t.checkConnected(ms); err != nil {
		return nil, err
	}
	return t, nil
}

// Universe returns the number of sites that could ever join.
func (t *Tracker) Universe() int { return t.topo.Sites }

// View returns the current view.
func (t *Tracker) View() View {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.view.Clone()
}

// Cost returns the current member-to-member transfer cost C(i,j), or -1
// when either endpoint is not a member.
func (t *Tracker) Cost(i, j int) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || j < 0 || i >= t.topo.Sites || j >= t.topo.Sites {
		return -1
	}
	if d := t.dist[i*t.topo.Sites+j]; d < unreachable {
		return d
	}
	return -1
}

// SourcePasses returns the number of single-source shortest-path passes
// run since construction (construction itself runs one per initial
// member).
func (t *Tracker) SourcePasses() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sourcePasses
}

// SubMatrix returns the dense member-to-member distance matrix together
// with the dense→universe site map (SubMatrix row d is universe site
// map[d]). The matrix is a snapshot; later membership events do not touch
// it.
func (t *Tracker) SubMatrix() (*netsim.DistMatrix, []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ms := append([]int(nil), t.view.Members...)
	sub := netsim.NewDistMatrix(len(ms))
	for a, i := range ms {
		for b, j := range ms {
			if a == b {
				continue
			}
			sub.Set(a, b, t.dist[i*t.topo.Sites+j])
		}
	}
	return sub, ms
}

// Subscribe registers fn to be called with every view emitted by a later
// Join or Leave. Callbacks run synchronously inside the membership event,
// so by the time Join/Leave returns every subscriber has seen the view.
func (t *Tracker) Subscribe(fn func(View)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.subs = append(t.subs, fn)
}

// notify runs the subscriber callbacks for a committed view. Callers hold
// eventMu (never mu), so callbacks can read the tracker freely.
func (t *Tracker) notify(v View) {
	t.mu.Lock()
	subs := make([]func(View), len(t.subs))
	copy(subs, t.subs)
	t.mu.Unlock()
	for _, fn := range subs {
		fn(v.Clone())
	}
}

// JoinSite adds a site to the view, incrementally extending the distance
// matrix: one shortest-path pass from the joining site over the new member
// subgraph, then a relaxation of every member pair through it (joins can
// only shorten paths). Returns the new view.
func (t *Tracker) JoinSite(site int) (View, error) {
	t.eventMu.Lock()
	defer t.eventMu.Unlock()
	v, err := t.joinLocked(site)
	if err != nil {
		return View{}, err
	}
	t.notify(v)
	return v, nil
}

func (t *Tracker) joinLocked(site int) (View, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.topo.Sites
	if site < 0 || site >= m {
		return View{}, fmt.Errorf("membership: join of site %d outside universe of %d sites", site, m)
	}
	if t.view.Has(site) {
		return View{}, fmt.Errorf("membership: site %d is already a member", site)
	}
	members := append(append([]int(nil), t.view.Members...), site)
	sort.Ints(members)
	memberSet := make([]bool, m)
	for _, s := range members {
		memberSet[s] = true
	}
	row := t.dijkstra(site, memberSet)
	for _, s := range t.view.Members {
		if row[s] >= unreachable {
			return View{}, fmt.Errorf("membership: site %d cannot reach member %d; the view must stay connected", site, s)
		}
	}
	t.setRow(site, row)
	// Relax every member pair through the new site. Distances only shrink,
	// so no path information is invalidated.
	for _, i := range t.view.Members {
		di := t.dist[i*m+site]
		for _, j := range t.view.Members {
			if v := di + t.dist[site*m+j]; v < t.dist[i*m+j] {
				t.dist[i*m+j] = v
			}
		}
	}
	t.view = View{Epoch: t.view.Epoch + 1, Members: members}
	return t.view.Clone(), nil
}

// LeaveSite removes a site from the view. Shortest paths that may have
// crossed it are recomputed: a source i needs a fresh pass only if some
// d(i,j) equals d(i,site)+d(site,j) — the necessary condition for the
// departed site to lie on i's shortest path tree. The view must stay
// connected and non-empty; a violating leave is rejected with the matrix
// untouched.
func (t *Tracker) LeaveSite(site int) (View, error) {
	t.eventMu.Lock()
	defer t.eventMu.Unlock()
	v, err := t.leaveLocked(site)
	if err != nil {
		return View{}, err
	}
	t.notify(v)
	return v, nil
}

func (t *Tracker) leaveLocked(site int) (View, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.view.Has(site) {
		return View{}, fmt.Errorf("membership: site %d is not a member", site)
	}
	if len(t.view.Members) == 1 {
		return View{}, fmt.Errorf("membership: cannot remove the last member")
	}
	m := t.topo.Sites
	survivors := make([]int, 0, len(t.view.Members)-1)
	for _, s := range t.view.Members {
		if s != site {
			survivors = append(survivors, s)
		}
	}
	memberSet := make([]bool, m)
	for _, s := range survivors {
		memberSet[s] = true
	}
	// Conservative affected-source test: if no pair from i routes through
	// the departed site, i's whole row survives verbatim.
	fresh := make(map[int][]int64)
	for _, i := range survivors {
		affected := false
		di := t.dist[i*m+site]
		for _, j := range survivors {
			if i != j && di+t.dist[site*m+j] == t.dist[i*m+j] {
				affected = true
				break
			}
		}
		if affected {
			fresh[i] = t.dijkstra(i, memberSet)
		}
	}
	// Commit only after the connectivity check passes.
	for i, row := range fresh {
		for _, j := range survivors {
			if row[j] >= unreachable {
				return View{}, fmt.Errorf("membership: removing site %d disconnects members %d and %d", site, i, j)
			}
		}
	}
	for i, row := range fresh {
		for _, j := range survivors {
			t.dist[i*m+j] = row[j]
			t.dist[j*m+i] = row[j]
		}
	}
	for j := 0; j < m; j++ {
		t.dist[site*m+j] = unreachable
		t.dist[j*m+site] = unreachable
	}
	t.view = View{Epoch: t.view.Epoch + 1, Members: survivors}
	return t.view.Clone(), nil
}

func (t *Tracker) memberSet() []bool {
	set := make([]bool, t.topo.Sites)
	for _, s := range t.view.Members {
		set[s] = true
	}
	return set
}

func (t *Tracker) setRow(src int, row []int64) {
	m := t.topo.Sites
	for j, d := range row {
		t.dist[src*m+j] = d
		t.dist[j*m+src] = d
	}
}

func (t *Tracker) checkConnected(members []int) error {
	m := t.topo.Sites
	for _, i := range members {
		for _, j := range members {
			if t.dist[i*m+j] >= unreachable {
				return fmt.Errorf("membership: members %d and %d are disconnected in the member subgraph", i, j)
			}
		}
	}
	return nil
}

// dijkstra runs one single-source pass from src over the subgraph induced
// by member (src itself is always traversable). Returns a universe-sized
// row with unreachable for sites outside the subgraph.
func (t *Tracker) dijkstra(src int, member []bool) []int64 {
	t.sourcePasses++
	m := t.topo.Sites
	adj := make([][]netsim.Link, m)
	for _, l := range t.topo.Links {
		adj[l.From] = append(adj[l.From], l)
		adj[l.To] = append(adj[l.To], netsim.Link{From: l.To, To: l.From, Cost: l.Cost})
	}
	dist := make([]int64, m)
	for i := range dist {
		dist[i] = unreachable
	}
	dist[src] = 0
	// Binary-heap-free priority queue would be overkill at these sizes; a
	// simple lazy heap via sorted scans keeps this dependency-light.
	type item struct {
		site int
		d    int64
	}
	queue := []item{{src, 0}}
	for len(queue) > 0 {
		// Pop the minimum.
		best := 0
		for i := 1; i < len(queue); i++ {
			if queue[i].d < queue[best].d {
				best = i
			}
		}
		cur := queue[best]
		queue[best] = queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if cur.d > dist[cur.site] {
			continue
		}
		for _, l := range adj[cur.site] {
			if !member[l.To] && l.To != src {
				continue
			}
			if v := cur.d + l.Cost; v < dist[l.To] {
				dist[l.To] = v
				queue = append(queue, item{l.To, v})
			}
		}
	}
	return dist
}
