package membership

import (
	"math/rand"
	"testing"

	"drp/internal/netsim"
)

// ringTopo builds a ring of m sites with distinct link costs so shortest
// paths are sensitive to which sites are members.
func ringTopo(m int) *netsim.Topology {
	t := netsim.NewTopology(m)
	for i := 0; i < m; i++ {
		t.Links = append(t.Links, netsim.Link{From: i, To: (i + 1) % m, Cost: int64(1 + i%3)})
	}
	return t
}

// freshMatrix computes member-to-member distances from scratch through the
// member-induced subgraph — the oracle the incremental tracker must match.
func freshMatrix(t *testing.T, topo *netsim.Topology, members []int) map[[2]int]int64 {
	t.Helper()
	sub := netsim.NewTopology(topo.Sites)
	in := make([]bool, topo.Sites)
	for _, s := range members {
		in[s] = true
	}
	for _, l := range topo.Links {
		if in[l.From] && in[l.To] {
			sub.Links = append(sub.Links, l)
		}
	}
	d, err := sub.Distances()
	if err != nil {
		// Disconnected because non-members have no links: compute pairwise
		// reachability by hand via Dijkstra-like relaxation instead.
		return floydMembers(sub, members)
	}
	out := make(map[[2]int]int64)
	for _, i := range members {
		for _, j := range members {
			out[[2]int{i, j}] = d.At(i, j)
		}
	}
	return out
}

func floydMembers(sub *netsim.Topology, members []int) map[[2]int]int64 {
	const inf = int64(1) << 60
	m := sub.Sites
	d := make([]int64, m*m)
	for i := range d {
		d[i] = inf
	}
	for i := 0; i < m; i++ {
		d[i*m+i] = 0
	}
	for _, l := range sub.Links {
		if l.Cost < d[l.From*m+l.To] {
			d[l.From*m+l.To] = l.Cost
			d[l.To*m+l.From] = l.Cost
		}
	}
	for k := 0; k < m; k++ {
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				if v := d[i*m+k] + d[k*m+j]; v < d[i*m+j] {
					d[i*m+j] = v
				}
			}
		}
	}
	out := make(map[[2]int]int64)
	for _, i := range members {
		for _, j := range members {
			out[[2]int{i, j}] = d[i*m+j]
		}
	}
	return out
}

func assertMatches(t *testing.T, tr *Tracker, topo *netsim.Topology) {
	t.Helper()
	view := tr.View()
	want := freshMatrix(t, topo, view.Members)
	for _, i := range view.Members {
		for _, j := range view.Members {
			if got := tr.Cost(i, j); got != want[[2]int{i, j}] {
				t.Fatalf("epoch %d: Cost(%d,%d) = %d, fresh recompute says %d",
					view.Epoch, i, j, got, want[[2]int{i, j}])
			}
		}
	}
}

func TestTrackerChurnMatchesFreshRecompute(t *testing.T) {
	const m = 12
	topo := ringTopo(m)
	// Add chords so leaves do not disconnect the ring trivially.
	for i := 0; i < m; i += 2 {
		topo.Links = append(topo.Links, netsim.Link{From: i, To: (i + 5) % m, Cost: int64(4 + i)})
	}
	tr, err := NewTracker(topo, []int{0, 1, 2, 3, 4, 5, 6, 7})
	if err != nil {
		t.Fatalf("NewTracker: %v", err)
	}
	assertMatches(t, tr, topo)

	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 120; step++ {
		view := tr.View()
		if rng.Intn(2) == 0 && len(view.Members) < m {
			// Join a random non-member.
			var outs []int
			for s := 0; s < m; s++ {
				if !view.Has(s) {
					outs = append(outs, s)
				}
			}
			site := outs[rng.Intn(len(outs))]
			if _, err := tr.JoinSite(site); err != nil {
				// Joins disconnected from the member subgraph are rejected;
				// the matrix must be untouched.
				assertMatches(t, tr, topo)
				continue
			}
		} else if len(view.Members) > 2 {
			site := view.Members[rng.Intn(len(view.Members))]
			if _, err := tr.LeaveSite(site); err != nil {
				// Leaves that would disconnect the view are rejected; the
				// matrix must be untouched.
				assertMatches(t, tr, topo)
				continue
			}
		} else {
			continue
		}
		assertMatches(t, tr, topo)
	}
}

func TestTrackerEpochsAndEvents(t *testing.T) {
	topo := netsim.Complete(lineMatrix(t, 5))
	tr, err := NewTracker(topo, []int{0, 1, 2})
	if err != nil {
		t.Fatalf("NewTracker: %v", err)
	}
	var seen []View
	tr.Subscribe(func(v View) { seen = append(seen, v) })

	v, err := tr.JoinSite(4)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if v.Epoch != 1 || !v.Has(4) {
		t.Fatalf("join view = %v", v)
	}
	v, err = tr.LeaveSite(0)
	if err != nil {
		t.Fatalf("leave: %v", err)
	}
	if v.Epoch != 2 || v.Has(0) {
		t.Fatalf("leave view = %v", v)
	}
	if len(seen) != 2 || seen[0].Epoch != 1 || seen[1].Epoch != 2 {
		t.Fatalf("subscriber saw %v", seen)
	}
	// Cost must report -1 for the departed and never-joined sites.
	if c := tr.Cost(0, 1); c != -1 {
		t.Fatalf("Cost(departed) = %d, want -1", c)
	}
	if c := tr.Cost(3, 1); c != -1 {
		t.Fatalf("Cost(non-member) = %d, want -1", c)
	}
}

func TestTrackerRejections(t *testing.T) {
	topo := ringTopo(6)
	if _, err := NewTracker(topo, nil); err == nil {
		t.Fatal("empty initial membership accepted")
	}
	if _, err := NewTracker(topo, []int{0, 0, 1}); err == nil {
		t.Fatal("duplicate initial member accepted")
	}
	if _, err := NewTracker(topo, []int{0, 6}); err == nil {
		t.Fatal("out-of-universe member accepted")
	}
	// 0 and 3 are opposite ends of the ring: with only those two members the
	// member subgraph has no links at all.
	if _, err := NewTracker(topo, []int{0, 3}); err == nil {
		t.Fatal("disconnected initial membership accepted")
	}

	tr, err := NewTracker(topo, []int{0, 1, 2})
	if err != nil {
		t.Fatalf("NewTracker: %v", err)
	}
	if _, err := tr.JoinSite(1); err == nil {
		t.Fatal("double join accepted")
	}
	if _, err := tr.JoinSite(9); err == nil {
		t.Fatal("out-of-universe join accepted")
	}
	// Site 4 touches only ring neighbours 3 and 5, neither a member.
	if _, err := tr.JoinSite(4); err == nil {
		t.Fatal("disconnected join accepted")
	}
	// Removing the middle of the member chain 0–1–2 disconnects 0 from 2.
	if _, err := tr.LeaveSite(1); err == nil {
		t.Fatal("disconnecting leave accepted")
	}
	assertMatches(t, tr, topo) // rejected leave must not corrupt the matrix
	if _, err := tr.LeaveSite(5); err == nil {
		t.Fatal("leave of non-member accepted")
	}
	if _, err := tr.LeaveSite(0); err != nil {
		t.Fatalf("legal leave rejected: %v", err)
	}
	if _, err := tr.LeaveSite(1); err != nil {
		t.Fatalf("legal leave rejected: %v", err)
	}
	if _, err := tr.LeaveSite(2); err == nil {
		t.Fatal("leave of last member accepted")
	}
}

// TestTrackerIncrementality pins that joins cost one shortest-path pass
// and leaves only re-run passes from affected sources, instead of
// recomputing every row on every event.
func TestTrackerIncrementality(t *testing.T) {
	const m = 16
	topo := ringTopo(m)
	members := make([]int, m)
	for i := range members {
		members[i] = i
	}
	tr, err := NewTracker(topo, members)
	if err != nil {
		t.Fatalf("NewTracker: %v", err)
	}
	base := tr.SourcePasses()
	if base != m {
		t.Fatalf("construction ran %d passes, want one per member (%d)", base, m)
	}
	// A join is exactly one pass.
	if _, err := tr.LeaveSite(3); err != nil {
		t.Fatalf("leave: %v", err)
	}
	afterLeave := tr.SourcePasses() - base
	if afterLeave >= m {
		t.Fatalf("leave re-ran %d passes, want fewer than full recompute (%d)", afterLeave, m)
	}
	mark := tr.SourcePasses()
	if _, err := tr.JoinSite(3); err != nil {
		t.Fatalf("join: %v", err)
	}
	if got := tr.SourcePasses() - mark; got != 1 {
		t.Fatalf("join ran %d passes, want exactly 1", got)
	}
}

func TestSubMatrixRestriction(t *testing.T) {
	topo := ringTopo(8)
	tr, err := NewTracker(topo, []int{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatalf("NewTracker: %v", err)
	}
	sub, siteMap := tr.SubMatrix()
	if sub.Sites() != 5 || len(siteMap) != 5 {
		t.Fatalf("SubMatrix dims: %d sites, map %v", sub.Sites(), siteMap)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("SubMatrix invalid: %v", err)
	}
	for a, i := range siteMap {
		for b, j := range siteMap {
			if a == b {
				continue
			}
			if sub.At(a, b) != tr.Cost(i, j) {
				t.Fatalf("SubMatrix(%d,%d)=%d, Cost(%d,%d)=%d",
					a, b, sub.At(a, b), i, j, tr.Cost(i, j))
			}
		}
	}
}

func TestCompleteTopologyPreservesMetric(t *testing.T) {
	d := lineMatrix(t, 6)
	topo := netsim.Complete(d)
	tr, err := NewTracker(topo, []int{0, 2, 5})
	if err != nil {
		t.Fatalf("NewTracker: %v", err)
	}
	// A metric's complete graph keeps pairwise distances intact under any
	// restriction: the direct link is always a shortest path.
	for _, pair := range [][2]int{{0, 2}, {0, 5}, {2, 5}} {
		if got := tr.Cost(pair[0], pair[1]); got != d.At(pair[0], pair[1]) {
			t.Fatalf("Cost(%d,%d) = %d, want metric entry %d",
				pair[0], pair[1], got, d.At(pair[0], pair[1]))
		}
	}
}

// lineMatrix is the shortest-path matrix of a line graph with unit hop
// cost i+1 between sites i and i+1 — a valid metric.
func lineMatrix(t *testing.T, m int) *netsim.DistMatrix {
	t.Helper()
	topo := netsim.NewTopology(m)
	for i := 0; i+1 < m; i++ {
		topo.Links = append(topo.Links, netsim.Link{From: i, To: i + 1, Cost: int64(i + 1)})
	}
	d, err := topo.Distances()
	if err != nil {
		t.Fatalf("Distances: %v", err)
	}
	return d
}
