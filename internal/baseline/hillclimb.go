package baseline

import (
	"drp/internal/core"
)

// HillClimbResult reports a local-search run.
type HillClimbResult struct {
	Scheme *core.Scheme
	// Moves is the number of accepted improving moves.
	Moves int
	// Evaluations counts delta evaluations performed.
	Evaluations int
}

// HillClimb runs steepest-descent local search over single-replica moves
// (add one replica or remove one replica), starting from the given scheme
// (primaries-only if nil). It accepts the best improving move each round
// and stops at a local optimum or after maxMoves accepted moves
// (0 = unbounded).
//
// This is the classic comparator the paper's related work solves with
// integer programming: with the incremental evaluator each round costs
// O(M·N) delta evaluations of O(M·|R_k|) each. It beats SRA's local view
// (it can also *remove* misplaced replicas) but explores far less than
// GRA.
func HillClimb(p *core.Problem, start *core.Scheme, maxMoves int) *HillClimbResult {
	var scheme *core.Scheme
	if start == nil {
		scheme = core.NewScheme(p)
	} else {
		scheme = start.Clone()
	}
	d := core.NewDeltaEvaluator(scheme)
	res := &HillClimbResult{}

	for maxMoves <= 0 || res.Moves < maxMoves {
		bestDelta := int64(0)
		bestI, bestK, bestAdd := -1, -1, false
		for i := 0; i < p.Sites(); i++ {
			for k := 0; k < p.Objects(); k++ {
				if delta, ok := d.AddDelta(i, k); ok {
					res.Evaluations++
					if delta < bestDelta {
						bestDelta, bestI, bestK, bestAdd = delta, i, k, true
					}
				} else if delta, ok := d.RemoveDelta(i, k); ok {
					res.Evaluations++
					if delta < bestDelta {
						bestDelta, bestI, bestK, bestAdd = delta, i, k, false
					}
				}
			}
		}
		if bestI < 0 {
			break // local optimum
		}
		var err error
		if bestAdd {
			err = d.Add(bestI, bestK)
		} else {
			err = d.Remove(bestI, bestK)
		}
		if err != nil {
			panic("baseline: accepted move rejected: " + err.Error())
		}
		res.Moves++
	}
	res.Scheme = d.Scheme()
	return res
}
