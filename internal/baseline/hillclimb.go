package baseline

import (
	"drp/internal/core"
	"drp/internal/solver"
)

// HillClimbResult reports a local-search run.
type HillClimbResult struct {
	Scheme *core.Scheme
	// Moves is the number of accepted improving moves.
	Moves int
	// Evaluations counts delta evaluations performed (mirrors
	// Stats.Evaluations).
	Evaluations int
	// Stats is the solver-runtime accounting: Iterations counts accepted
	// moves and Stopped tells whether the search reached a local optimum
	// (completed) or was interrupted at a round boundary. The scheme is
	// valid either way — moves are applied incrementally.
	Stats solver.Stats
}

// HillClimb runs steepest-descent local search over single-replica moves
// (add one replica or remove one replica), starting from the given scheme
// (primaries-only if nil). It accepts the best improving move each round
// and stops at a local optimum or after maxMoves accepted moves
// (0 = unbounded).
//
// This is the classic comparator the paper's related work solves with
// integer programming: with the incremental evaluator each round costs
// O(M·N) delta evaluations of O(M·|R_k|) each. It beats SRA's local view
// (it can also *remove* misplaced replicas) but explores far less than
// GRA.
func HillClimb(p *core.Problem, start *core.Scheme, maxMoves int) *HillClimbResult {
	return HillClimbWith(p, start, maxMoves, solver.Run{})
}

// HillClimbWith is HillClimb under anytime controls: interruption is
// checked once per round (one round scans every move and accepts the best),
// with the budget counted in delta evaluations.
func HillClimbWith(p *core.Problem, start *core.Scheme, maxMoves int, run solver.Run) *HillClimbResult {
	c := solver.Start("hill", run)
	var scheme *core.Scheme
	if start == nil {
		scheme = core.NewScheme(p)
	} else {
		scheme = start.Clone()
	}
	d := core.NewDeltaEvaluator(scheme)
	res := &HillClimbResult{}

	stop := solver.StopCompleted
	for maxMoves <= 0 || res.Moves < maxMoves {
		if reason, halt := c.Check(); halt {
			stop = reason
			break
		}
		before := res.Evaluations
		bestDelta := int64(0)
		bestI, bestK, bestAdd := -1, -1, false
		for i := 0; i < p.Sites(); i++ {
			for k := 0; k < p.Objects(); k++ {
				if delta, ok := d.AddDelta(i, k); ok {
					res.Evaluations++
					if delta < bestDelta {
						bestDelta, bestI, bestK, bestAdd = delta, i, k, true
					}
				} else if delta, ok := d.RemoveDelta(i, k); ok {
					res.Evaluations++
					if delta < bestDelta {
						bestDelta, bestI, bestK, bestAdd = delta, i, k, false
					}
				}
			}
		}
		c.Charge(res.Evaluations - before)
		if bestI < 0 {
			break // local optimum
		}
		var err error
		if bestAdd {
			err = d.Add(bestI, bestK)
		} else {
			err = d.Remove(bestI, bestK)
		}
		if err != nil {
			panic("baseline: accepted move rejected: " + err.Error())
		}
		res.Moves++
		c.Observe(res.Moves, 0, 0, 0)
	}
	res.Scheme = d.Scheme()
	res.Stats = c.Finish(res.Moves, stop)
	return res
}
