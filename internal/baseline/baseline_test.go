package baseline

import (
	"testing"

	"drp/internal/core"
	"drp/internal/sra"
	"drp/internal/workload"
)

func gen(t testing.TB, m, n int, u, c float64, seed uint64) *core.Problem {
	t.Helper()
	p, err := workload.Generate(workload.NewSpec(m, n, u, c), seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNoReplication(t *testing.T) {
	p := gen(t, 8, 10, 0.05, 0.15, 1)
	s := NoReplication(p)
	if s.TotalReplicas() != 0 {
		t.Fatalf("no-replication placed %d replicas", s.TotalReplicas())
	}
	if s.Cost() != p.DPrime() {
		t.Fatal("no-replication cost != D'")
	}
}

func TestRandomIsValid(t *testing.T) {
	p := gen(t, 10, 15, 0.05, 0.15, 2)
	for seed := uint64(0); seed < 5; seed++ {
		s := Random(p, seed)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: invalid random scheme: %v", seed, err)
		}
	}
}

func TestRandomFillsStorage(t *testing.T) {
	p := gen(t, 10, 15, 0.05, 0.15, 3)
	s := Random(p, 1)
	if s.TotalReplicas() == 0 {
		t.Fatal("random placement placed nothing")
	}
}

func TestReadOnlyGreedyValid(t *testing.T) {
	p := gen(t, 12, 15, 0.10, 0.15, 4)
	s := ReadOnlyGreedy(p)
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid scheme: %v", err)
	}
}

func TestReadOnlyGreedyMatchesSRAWithoutWrites(t *testing.T) {
	// With zero writes the benefit value reduces to pure read savings, so
	// write-blind greed loses nothing: costs should be close.
	p := gen(t, 10, 12, 0.0, 0.20, 5)
	ro := ReadOnlyGreedy(p).Cost()
	sr := sra.Run(p, sra.Options{}).Scheme.Cost()
	// The two greedies rank candidates differently (raw gain vs gain per
	// storage unit), so allow a modest spread.
	ratio := float64(ro) / float64(sr)
	if ratio > 1.1 || ratio < 0.9 {
		t.Fatalf("read-only %d vs SRA %d (ratio %v); expected near parity with no writes", ro, sr, ratio)
	}
}

func TestReadOnlyGreedyWorseUnderWrites(t *testing.T) {
	// Under heavy writes, ignoring the update fan-in must hurt: SRA should
	// be at least as good.
	p := gen(t, 12, 15, 0.5, 0.25, 6)
	ro := ReadOnlyGreedy(p).Cost()
	sr := sra.Run(p, sra.Options{}).Scheme.Cost()
	if sr > ro {
		t.Fatalf("SRA %d worse than write-blind greedy %d under heavy writes", sr, ro)
	}
}

func TestOptimalTinyInstance(t *testing.T) {
	p := gen(t, 3, 3, 0.05, 0.5, 7)
	opt, err := Optimal(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	// Optimal must beat or match every other algorithm.
	for name, s := range map[string]*core.Scheme{
		"no-replication": NoReplication(p),
		"random":         Random(p, 1),
		"read-only":      ReadOnlyGreedy(p),
		"sra":            sra.Run(p, sra.Options{}).Scheme,
	} {
		if opt.Cost() > s.Cost() {
			t.Errorf("optimal %d worse than %s %d", opt.Cost(), name, s.Cost())
		}
	}
}

func TestOptimalRefusesLargeInstances(t *testing.T) {
	p := gen(t, 10, 10, 0.05, 0.15, 8)
	if _, err := Optimal(p, 16); err == nil {
		t.Fatal("optimal accepted a 90-free-bit instance")
	}
}
