package baseline

import (
	"context"
	"testing"

	"drp/internal/solver"
)

func TestHillClimbExpiredDeadlineKeepsStart(t *testing.T) {
	p := gen(t, 8, 10, 0.05, 0.2, 41)
	res := HillClimbWith(p, nil, 0, solver.Run{Timeout: -1})
	if res.Stats.Stopped != solver.StopDeadline {
		t.Fatalf("stopped %v, want deadline", res.Stats.Stopped)
	}
	if res.Moves != 0 || res.Stats.Iterations != 0 {
		t.Fatalf("expired run accepted %d moves", res.Moves)
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatalf("scheme invalid: %v", err)
	}
	if res.Scheme.TotalReplicas() != 0 {
		t.Fatal("expired run should return the primaries-only start")
	}
}

func TestHillClimbBudgetTruncates(t *testing.T) {
	p := gen(t, 8, 10, 0.02, 0.3, 42)
	full := HillClimb(p, nil, 0)
	if full.Moves < 2 {
		t.Skip("instance converges too fast to truncate")
	}
	res := HillClimbWith(p, nil, 0, solver.Run{Budget: 1})
	if res.Stats.Stopped != solver.StopBudget {
		t.Fatalf("stopped %v, want budget", res.Stats.Stopped)
	}
	// Soft cap: the first round completes (one accepted move), then stops.
	if res.Moves != 1 {
		t.Fatalf("accepted %d moves under a 1-evaluation budget, want 1", res.Moves)
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatalf("scheme invalid: %v", err)
	}
	// Steepest descent only improves, so even the truncated scheme beats
	// the primaries-only start.
	if res.Scheme.Cost() >= p.DPrime() {
		t.Fatal("truncated run did not improve on the start")
	}
}

func TestHillClimbUnfiredControlsMatchOpenLoop(t *testing.T) {
	p := gen(t, 8, 10, 0.05, 0.2, 43)
	plain := HillClimb(p, nil, 0)
	controlled := HillClimbWith(p, nil, 0, solver.Run{Budget: 1 << 30, Context: context.Background()})
	if controlled.Stats.Stopped != solver.StopCompleted {
		t.Fatalf("stopped %v", controlled.Stats.Stopped)
	}
	if !plain.Scheme.Equal(controlled.Scheme) || plain.Moves != controlled.Moves || plain.Evaluations != controlled.Evaluations {
		t.Fatal("unfired controls changed the hill climb")
	}
	if controlled.Stats.Evaluations != controlled.Evaluations || controlled.Stats.Iterations != controlled.Moves {
		t.Fatalf("stats mirror broken: %+v", controlled.Stats)
	}
}

func TestOptimalInterruptedReturnsBestSoFar(t *testing.T) {
	p := gen(t, 3, 3, 0.05, 0.5, 43)
	full, err := OptimalWith(p, 16, solver.Run{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.Stopped != solver.StopCompleted {
		t.Fatalf("full search stopped %v", full.Stats.Stopped)
	}
	if full.Stats.Iterations < 4 {
		t.Fatalf("instance enumerates only %d leaves; too tight to truncate", full.Stats.Iterations)
	}

	part, err := OptimalWith(p, 16, solver.Run{Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	if part.Stats.Stopped != solver.StopBudget {
		t.Fatalf("stopped %v, want budget", part.Stats.Stopped)
	}
	if part.Stats.Iterations >= full.Stats.Iterations {
		t.Fatalf("budgeted search covered %d leaves, full %d", part.Stats.Iterations, full.Stats.Iterations)
	}
	if err := part.Scheme.Validate(); err != nil {
		t.Fatalf("partial scheme invalid: %v", err)
	}
	// Best-so-far can only be worse than (or equal to) the true optimum.
	if part.Scheme.Cost() < full.Scheme.Cost() {
		t.Fatal("partial search beat the exhaustive optimum")
	}
}

func TestOptimalGateBeforeControls(t *testing.T) {
	p := gen(t, 6, 8, 0.05, 0.2, 45)
	// The free-bits gate must fire even with an already-expired deadline.
	if _, err := OptimalWith(p, 4, solver.Run{Timeout: -1}); err == nil {
		t.Fatal("oversized instance accepted")
	}
}

func TestOptimalCancelled(t *testing.T) {
	p := gen(t, 3, 3, 0.05, 0.3, 46)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := OptimalWith(p, 16, solver.Run{Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Stopped != solver.StopCancelled {
		t.Fatalf("stopped %v, want cancelled", res.Stats.Stopped)
	}
	if res.Stats.Iterations != 0 {
		t.Fatalf("cancelled search still enumerated %d leaves", res.Stats.Iterations)
	}
	// The primaries-only starting point is always a valid fallback.
	if err := res.Scheme.Validate(); err != nil {
		t.Fatalf("fallback scheme invalid: %v", err)
	}
}
