package baseline

import (
	"testing"

	"drp/internal/sra"
)

func TestHillClimbImprovesOrMatchesStart(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		p := gen(t, 10, 14, 0.05, 0.15, seed)
		start := NoReplication(p)
		res := HillClimb(p, nil, 0)
		if err := res.Scheme.Validate(); err != nil {
			t.Fatalf("seed %d: invalid scheme: %v", seed, err)
		}
		if res.Scheme.Cost() > start.Cost() {
			t.Fatalf("seed %d: hill climb worsened the start", seed)
		}
	}
}

func TestHillClimbReachesLocalOptimum(t *testing.T) {
	p := gen(t, 8, 10, 0.05, 0.2, 11)
	res := HillClimb(p, nil, 0)
	// At a local optimum no single add/remove improves: re-running from
	// the result must accept zero moves.
	again := HillClimb(p, res.Scheme, 0)
	if again.Moves != 0 {
		t.Fatalf("re-run from local optimum accepted %d moves", again.Moves)
	}
}

func TestHillClimbAtLeastAsGoodAsSRA(t *testing.T) {
	// Seeded with SRA's scheme, hill climbing can only improve on it; it
	// also repairs greedy misplacements by removing replicas.
	for seed := uint64(1); seed <= 3; seed++ {
		p := gen(t, 10, 12, 0.10, 0.15, seed)
		sraScheme := sra.Run(p, sra.Options{}).Scheme
		res := HillClimb(p, sraScheme, 0)
		if res.Scheme.Cost() > sraScheme.Cost() {
			t.Fatalf("seed %d: hill climb from SRA got worse", seed)
		}
	}
}

func TestHillClimbMoveBudget(t *testing.T) {
	p := gen(t, 10, 14, 0.02, 0.2, 13)
	res := HillClimb(p, nil, 3)
	if res.Moves > 3 {
		t.Fatalf("accepted %d moves with budget 3", res.Moves)
	}
	if res.Evaluations == 0 {
		t.Fatal("no evaluations recorded")
	}
}

func TestHillClimbDoesNotMutateStart(t *testing.T) {
	p := gen(t, 8, 10, 0.02, 0.2, 15)
	start := NoReplication(p)
	before := start.Cost()
	_ = HillClimb(p, start, 0)
	if start.Cost() != before || start.TotalReplicas() != 0 {
		t.Fatal("hill climb mutated its start scheme")
	}
}
