// Package baseline provides comparison algorithms for the DRP: the trivial
// no-replication scheme, random valid placement, a read-only greedy that
// ignores the update penalty, and an exhaustive optimal solver for tiny
// instances. The heuristic papers' claims ("GRA beats SRA", "SRA is near
// optimal for read-heavy workloads") are tested against these.
package baseline

import (
	"fmt"

	"drp/internal/core"
	"drp/internal/solver"
	"drp/internal/xrand"
)

// NoReplication returns the primaries-only scheme, the paper's normaliser.
func NoReplication(p *core.Problem) *core.Scheme {
	return core.NewScheme(p)
}

// Random fills sites with uniformly random replicas until attempts
// consecutive placements fail, yielding a valid but undirected scheme.
func Random(p *core.Problem, seed uint64) *core.Scheme {
	rng := xrand.New(seed)
	s := core.NewScheme(p)
	failures := 0
	limit := 4 * p.Sites() * p.Objects()
	for failures < limit {
		i, k := rng.Intn(p.Sites()), rng.Intn(p.Objects())
		if err := s.Add(i, k); err != nil {
			failures++
			continue
		}
		failures = 0
	}
	return s
}

// ReadOnlyGreedy replicates greedily by pure read benefit, ignoring the
// update fan-in entirely — the classic mirror-placement strategy that the
// paper's cost model exists to correct. With writes present it
// over-replicates hot-write objects; comparing it against SRA isolates the
// value of eq. 5's write term.
func ReadOnlyGreedy(p *core.Problem) *core.Scheme {
	s := core.NewScheme(p)
	nearest := core.NewNearestTable(s)
	m, n := p.Sites(), p.Objects()
	for {
		placed := false
		for i := 0; i < m; i++ {
			bestK := -1
			var bestGain float64
			for k := 0; k < n; k++ {
				if s.Has(i, k) || p.Size(k) > s.Free(i) {
					continue
				}
				gain := float64(p.Reads(i, k) * nearest.Dist(i, k)) // per-unit-size read saving × o_k/o_k
				if gain > bestGain {
					bestGain = gain
					bestK = k
				}
			}
			if bestK >= 0 && bestGain > 0 {
				if err := s.Add(i, bestK); err != nil {
					panic("baseline: read-only greedy placement rejected: " + err.Error())
				}
				nearest.Add(i, bestK)
				placed = true
			}
		}
		if !placed {
			return s
		}
	}
}

// OptimalResult reports an exhaustive search, which under anytime controls
// may cover only part of the space.
type OptimalResult struct {
	// Scheme is the best placement among the leaves enumerated so far; it
	// is the true optimum only when Stats.Stopped is StopCompleted.
	Scheme *core.Scheme
	// Stats counts enumerated leaves as both Evaluations and Iterations
	// (every leaf costs one full-scheme evaluation).
	Stats solver.Stats
}

// Optimal exhaustively searches every valid placement and returns a
// minimum-cost scheme. The search space is 2^(M·N−N) (primary bits are
// fixed), so it is gated to instances with at most maxFreeBits free bits;
// it exists to measure heuristic optimality gaps in tests.
func Optimal(p *core.Problem, maxFreeBits int) (*core.Scheme, error) {
	res, err := OptimalWith(p, maxFreeBits, solver.Run{})
	if err != nil {
		return nil, err
	}
	return res.Scheme, nil
}

// OptimalWith is the exhaustive search under anytime controls — the one
// solver here that is otherwise uninterruptible for hours. Interruption is
// checked before each leaf evaluation; the best-so-far scheme (never worse
// than primaries-only) is returned with a non-completed stop reason.
func OptimalWith(p *core.Problem, maxFreeBits int, run solver.Run) (*OptimalResult, error) {
	free := make([][2]int, 0) // (site, object) pairs that may toggle
	for i := 0; i < p.Sites(); i++ {
		for k := 0; k < p.Objects(); k++ {
			if p.Primary(k) != i {
				free = append(free, [2]int{i, k})
			}
		}
	}
	if len(free) > maxFreeBits {
		return nil, fmt.Errorf("baseline: %d free bits exceeds limit %d", len(free), maxFreeBits)
	}
	c := solver.Start("optimal", run)
	best := core.NewScheme(p)
	bestCost := best.Cost()
	c.Charge(1)
	cur := core.NewScheme(p)
	stop := solver.StopCompleted
	halted := false
	leaves := 0
	var recurse func(idx int)
	recurse = func(idx int) {
		if halted {
			return
		}
		if idx == len(free) {
			if reason, halt := c.Check(); halt {
				stop = reason
				halted = true
				return
			}
			if cost := cur.Cost(); cost < bestCost {
				bestCost = cost
				best = cur.Clone()
			}
			c.Charge(1)
			leaves++
			c.Observe(leaves, 0, 0, bestCost)
			return
		}
		recurse(idx + 1) // bit off
		i, k := free[idx][0], free[idx][1]
		if err := cur.Add(i, k); err == nil {
			recurse(idx + 1) // bit on
			if err := cur.Remove(i, k); err != nil {
				panic("baseline: optimal backtrack failed: " + err.Error())
			}
		}
	}
	recurse(0)
	return &OptimalResult{Scheme: best, Stats: c.Finish(leaves, stop)}, nil
}
