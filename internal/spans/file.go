package spans

import (
	"fmt"
	"os"
)

// OpenFile builds the CLI tracing sink shared by drpnet and drpcluster:
// it creates (truncating) a JSONL span file at path and returns a tracer
// writing to it plus a close function that flushes and closes the file.
// clock selects the timestamp source — "logical" (the default, empty
// string included) yields byte-deterministic files for seeded runs,
// "wall" real durations. sample keeps every nth root request; values
// below 1 are rejected rather than silently clamped. Extra exporters
// (e.g. an EventExporter bridging into the -events sink) receive every
// span the file does; nils are dropped.
func OpenFile(path string, sample int64, clock string, extra ...Exporter) (*Tracer, func() error, error) {
	if sample < 1 {
		return nil, nil, fmt.Errorf("spans: sample must be >= 1, got %d", sample)
	}
	var ck Clock
	switch clock {
	case "", "logical":
		ck = NewLogicalClock()
	case "wall":
		ck = WallClock{}
	default:
		return nil, nil, fmt.Errorf("spans: unknown clock %q (want logical or wall)", clock)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w := NewWriter(f)
	tr := New(Multi(append([]Exporter{w}, extra...)...))
	tr.SetClock(ck)
	tr.SetSample(sample)
	cl := func() error {
		flushErr := w.Flush()
		if err := f.Close(); err != nil {
			return err
		}
		return flushErr
	}
	return tr, cl, nil
}
