package spans

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"drp/internal/metrics"
)

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	root := tr.Root("read")
	if root != nil {
		t.Fatalf("nil tracer minted a span")
	}
	// Every method must be callable on the nil span.
	child := root.Child("hop")
	if child != nil {
		t.Fatalf("nil span minted a child")
	}
	root.SetSite(1)
	root.SetPeer(2)
	root.SetObject(3)
	root.SetHop(0)
	root.SetAttempt(1)
	root.SetNTC(7)
	root.SetErrText("boom")
	root.SetVerdict("x")
	root.SetAttr("k", "v")
	root.Finish()
	if trace, span := root.Context(); trace != "" || span != "" {
		t.Fatalf("nil span leaked wire context %q/%q", trace, span)
	}
	if root.Dur() != 0 {
		t.Fatalf("nil span has duration")
	}
}

func TestTracerMintsDeterministicTree(t *testing.T) {
	run := func() []Span {
		col := &Collector{}
		tr := New(col)
		root := tr.Root("read")
		root.SetSite(2)
		root.SetObject(5)
		hop := root.Child("read.hop")
		hop.SetPeer(4)
		hop.SetHop(0)
		att := hop.Child("rpc.read")
		att.SetAttempt(0)
		att.Finish()
		hop.SetNTC(35)
		hop.Finish()
		root.Finish()
		return col.Spans()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs diverged:\n%v\n%v", a, b)
	}
	if len(a) != 3 {
		t.Fatalf("want 3 spans, got %d", len(a))
	}
	// Export order is finish order: leaf first, root last.
	if a[0].Name != "rpc.read" || a[2].Name != "read" {
		t.Fatalf("unexpected export order: %v", []string{a[0].Name, a[1].Name, a[2].Name})
	}
	// Children nest strictly inside parents under the logical clock.
	byID := map[string]Span{}
	for _, s := range a {
		byID[s.ID] = s
	}
	for _, s := range a {
		if s.Parent == "" {
			continue
		}
		p := byID[s.Parent]
		if s.Start <= p.Start || s.End >= p.End {
			t.Fatalf("span %s [%d,%d] not nested in parent %s [%d,%d]",
				s.ID, s.Start, s.End, p.ID, p.Start, p.End)
		}
		if s.Trace != p.Trace {
			t.Fatalf("child changed trace")
		}
	}
}

func TestSamplingKeepsEveryNth(t *testing.T) {
	col := &Collector{}
	tr := New(col)
	tr.SetSample(3)
	kept := 0
	for i := 0; i < 10; i++ {
		if sp := tr.Root("read"); sp != nil {
			kept++
			sp.Finish()
		}
	}
	if kept != 4 { // requests 0,3,6,9
		t.Fatalf("sample 1/3 over 10 roots kept %d, want 4", kept)
	}
	// Trace IDs stay dense over the kept roots.
	for i, s := range col.Spans() {
		want := "t" + string(rune('1'+i))
		if s.Trace != want {
			t.Fatalf("trace %d = %s, want %s", i, s.Trace, want)
		}
	}
}

func TestRemoteStitching(t *testing.T) {
	col := &Collector{}
	tr := New(col)
	root := tr.Root("write")
	att := root.Child("rpc.update")
	trace, span := att.Context()
	sv := tr.StartRemote(trace, span, "serve.update")
	sv.Finish()
	att.Finish()
	root.Finish()
	sps := col.Spans()
	if len(sps) != 3 {
		t.Fatalf("want 3 spans, got %d", len(sps))
	}
	if sps[0].Name != "serve.update" || sps[0].Parent != span || sps[0].Trace != trace {
		t.Fatalf("serve span not stitched under wire context: %+v", sps[0])
	}
	// No wire context → no server span.
	if tr.StartRemote("", "", "serve.read") != nil {
		t.Fatalf("StartRemote without context minted a span")
	}
}

func TestRedactAndClassify(t *testing.T) {
	col := &Collector{}
	tr := New(col)
	sp := tr.Root("read")
	sp.SetErrText("netnode: dial 127.0.0.1:40123: fault: dial 127.0.0.1:40123: site 3 is down (step 12)")
	sp.Finish()
	got := col.Spans()[0]
	if strings.Contains(got.Err, "40123") {
		t.Fatalf("ephemeral port survived redaction: %q", got.Err)
	}
	if !strings.Contains(got.Err, "addr") || !strings.Contains(got.Err, "site 3 is down (step 12)") {
		t.Fatalf("redaction mangled the message: %q", got.Err)
	}
	if got.Verdict != "crashed" {
		t.Fatalf("verdict = %q, want crashed", got.Verdict)
	}
	cases := map[string]string{
		"fault: link 1↔2 blackholed (step 3)":    "blackholed",
		"fault: message 1→2 dropped (step 3)":    "dropped",
		"fault: something new":                   "fault",
		"netnode: read object 3: no live holder": "",
	}
	for msg, want := range cases {
		if got := classify(msg); got != want {
			t.Fatalf("classify(%q) = %q, want %q", msg, got, want)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	col := &Collector{}
	tr := New(col)
	root := tr.Root("read")
	root.SetSite(0) // site 0 must survive the round trip (no omitempty)
	root.SetObject(0)
	hop := root.Child("read.hop")
	hop.SetPeer(3)
	hop.SetNTC(12)
	hop.SetAttr("k", "v")
	hop.Finish()
	root.Finish()
	orig := col.Spans()

	var buf bytes.Buffer
	if err := Encode(&buf, orig); err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("round trip diverged:\n%v\n%v", orig, back)
	}
	if !strings.Contains(buf.String(), `"site":0`) {
		// buf was consumed by Decode; re-encode to check the bytes.
		var buf2 bytes.Buffer
		_ = Encode(&buf2, orig)
		if !strings.Contains(buf2.String(), `"site":0`) {
			t.Fatalf("zero-valued site dropped from the wire form: %s", buf2.String())
		}
	}
}

func TestDecodeRejectsMalformedSpans(t *testing.T) {
	bad := []string{
		`{"trace":"","span":"s1","name":"x","site":-1,"peer":-1,"obj":-1,"hop":-1,"attempt":-1}`,
		`{"trace":"t1","span":"","name":"x","site":-1,"peer":-1,"obj":-1,"hop":-1,"attempt":-1}`,
		`{"trace":"t1","span":"s1","name":"","site":-1,"peer":-1,"obj":-1,"hop":-1,"attempt":-1}`,
		`{"trace":"t1","span":"s1","name":"x","start":5,"end":4,"site":-1,"peer":-1,"obj":-1,"hop":-1,"attempt":-1}`,
		`{"trace":"t1","span":"s1","name":"x","ntc":-2,"site":-1,"peer":-1,"obj":-1,"hop":-1,"attempt":-1}`,
		`{"trace":"t1","span":"s1","name":"x","site":-7,"peer":-1,"obj":-1,"hop":-1,"attempt":-1}`,
		`{"trace":"t1","span":"s1","name":"x"} {"extra":1}`,
		`not json`,
	}
	for _, line := range bad {
		if _, err := Decode(strings.NewReader(line)); err == nil {
			t.Fatalf("decode accepted malformed line %q", line)
		}
	}
}

func TestAssembleCriticalPathAndNTC(t *testing.T) {
	col := &Collector{}
	tr := New(col)
	root := tr.Root("read")
	h0 := root.Child("read.hop")
	h0.SetErrText("fault: site 4 is down (step 2)")
	h0.Finish()
	h1 := root.Child("read.hop")
	h1.SetNTC(21)
	h1.Finish()
	root.Finish()
	traces := Assemble(col.Spans())
	if len(traces) != 1 || traces[0].Count != 3 {
		t.Fatalf("assembled %d traces", len(traces))
	}
	trc := traces[0]
	if trc.NTC() != 21 {
		t.Fatalf("trace NTC = %d, want 21", trc.NTC())
	}
	path := CriticalPath(trc.Root())
	if len(path) != 2 || path[1].Span.NTC != 21 {
		t.Fatalf("critical path took the failed hop: %v", path)
	}
	edges := Edges(traces)
	if len(edges) != 2 {
		t.Fatalf("want 2 edge names, got %d", len(edges))
	}
	if edges[1].Name != "read.hop" || edges[1].Count != 2 || edges[1].Errors != 1 || edges[1].TotalNTC != 21 {
		t.Fatalf("read.hop edge stat wrong: %+v", edges[1])
	}
	var buf bytes.Buffer
	Waterfall(&buf, trc)
	out := buf.String()
	if !strings.Contains(out, "trace t1") || !strings.Contains(out, "verdict=crashed") {
		t.Fatalf("waterfall missing expected content:\n%s", out)
	}
}

func TestAssembleOrphansBecomeRoots(t *testing.T) {
	sps := []Span{
		{Trace: "t1", ID: "s2", Parent: "s-missing", Name: "child",
			Site: -1, Peer: -1, Object: -1, Hop: -1, Attempt: -1, Start: 5, End: 6},
		{Trace: "t1", ID: "s1", Name: "root",
			Site: -1, Peer: -1, Object: -1, Hop: -1, Attempt: -1, Start: 1, End: 9},
	}
	traces := Assemble(sps)
	if len(traces) != 1 || len(traces[0].Roots) != 2 {
		t.Fatalf("orphan not surfaced as extra root: %+v", traces)
	}
	if traces[0].Root().Name != "root" {
		t.Fatalf("primary root should be earliest start, got %s", traces[0].Root().Name)
	}
}

func TestEventExporterEmitsSpans(t *testing.T) {
	var buf bytes.Buffer
	// metrics.NewEventLog without timestamps gives deterministic lines.
	tr := New(NewEventExporter(metrics.NewEventLog(&buf)))
	sp := tr.Root("read")
	sp.SetSite(1)
	sp.SetNTC(4)
	sp.Finish()
	out := buf.String()
	for _, want := range []string{`"event":"span"`, `"name":"read"`, `"ntc":4`, `"site":1`} {
		if !strings.Contains(out, want) {
			t.Fatalf("event line missing %s:\n%s", want, out)
		}
	}
}
