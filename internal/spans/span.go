// Package spans is a zero-dependency distributed-tracing layer for the
// netnode data plane: every client request mints a trace, every hop,
// retry attempt, remote service, queued-write flush and WAL append
// becomes a span, and trace context rides the wire protocol so spans
// emitted on remote sites stitch into one tree. Spans carry the eq. 4
// network transfer cost they directly caused, so summing NTC over a
// trace reproduces the exact accounted cost the chaos suite asserts
// a priori (DESIGN.md §14 states the attribution rule).
//
// Not to be confused with drp/internal/trace, which holds *workload*
// traces — replayable request-count streams fed to the adaptive
// algorithms. This package records *request* spans: the live causal
// structure of individual reads and writes.
//
// Determinism: with the logical Clock and serial traffic, span IDs,
// timestamps and export order are pure functions of the seed and fault
// plan, so two identical runs produce byte-identical span files
// (addresses inside error strings are redacted to keep ephemeral ports
// out of the bytes).
package spans

import (
	"regexp"
	"strings"
)

// Span is one timed operation in a trace. Integer topology fields
// (Site, Peer, Object, Hop, Attempt) use -1 as "not applicable" and are
// always marshalled, because 0 is a valid site/object index. Start and
// End are Clock readings — monotonic ticks under the logical clock,
// UnixNano under the wall clock. NTC is the network transfer cost this
// span *directly* caused (never inherited from children), so per-trace
// sums are double-count free.
type Span struct {
	Trace   string            `json:"trace"`
	ID      string            `json:"span"`
	Parent  string            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	Site    int               `json:"site"`
	Peer    int               `json:"peer"`
	Object  int               `json:"obj"`
	Hop     int               `json:"hop"`
	Attempt int               `json:"attempt"`
	Start   int64             `json:"start"`
	End     int64             `json:"end"`
	NTC     int64             `json:"ntc"`
	Err     string            `json:"err,omitempty"`
	Verdict string            `json:"verdict,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`

	tr   *Tracer
	done bool
}

// Dur returns the span's duration in clock units.
func (s *Span) Dur() int64 {
	if s == nil {
		return 0
	}
	return s.End - s.Start
}

// Child starts a sub-span. A nil receiver returns nil, so an unsampled
// or untraced request costs nothing and propagates no wire context.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.start(s.Trace, s.ID, name)
}

// Finish stamps the end time and exports the span. Safe to call on nil
// and idempotent, so deferred finishes compose with early returns.
func (s *Span) Finish() {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.End = s.tr.clock.Now()
	s.tr.exp.Export(s)
}

// Context returns the (trace, span) pair to propagate over the wire;
// empty strings when the span is nil (request not traced).
func (s *Span) Context() (trace, span string) {
	if s == nil {
		return "", ""
	}
	return s.Trace, s.ID
}

// SetSite records the site executing the span.
func (s *Span) SetSite(site int) {
	if s != nil {
		s.Site = site
	}
}

// SetPeer records the remote site the span talks to.
func (s *Span) SetPeer(peer int) {
	if s != nil {
		s.Peer = peer
	}
}

// SetObject records the object the span operates on.
func (s *Span) SetObject(obj int) {
	if s != nil {
		s.Object = obj
	}
}

// SetHop records the failover-hop index along eq. 4's replica ranking.
func (s *Span) SetHop(hop int) {
	if s != nil {
		s.Hop = hop
	}
}

// SetAttempt records the retry-attempt index.
func (s *Span) SetAttempt(a int) {
	if s != nil {
		s.Attempt = a
	}
}

// SetNTC records the transfer cost this span directly caused.
func (s *Span) SetNTC(v int64) {
	if s != nil {
		s.NTC = v
	}
}

// SetErr records a failure. Dial addresses are redacted (ephemeral
// ports would break byte-determinism across runs) and fault-injector
// verdicts are classified into Verdict when one is recognised.
func (s *Span) SetErr(err error) {
	if s == nil || err == nil {
		return
	}
	s.SetErrText(err.Error())
}

// SetErrText is SetErr for pre-rendered error strings (wire replies).
func (s *Span) SetErrText(msg string) {
	if s == nil || msg == "" {
		return
	}
	s.Err = Redact(msg)
	if s.Verdict == "" {
		s.Verdict = classify(msg)
	}
}

// SetVerdict records an explicit outcome label (e.g. "stale", "queued").
func (s *Span) SetVerdict(v string) {
	if s != nil {
		s.Verdict = v
	}
}

// SetAttr attaches a free-form string attribute.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string)
	}
	s.Attrs[k] = v
}

// addrPattern matches host:port dial targets in error strings.
var addrPattern = regexp.MustCompile(`\b\d{1,3}(?:\.\d{1,3}){3}:\d+\b`)

// Redact replaces dial addresses in an error string with "addr" so span
// bytes don't depend on the ephemeral ports a run happened to bind.
func Redact(msg string) string {
	return addrPattern.ReplaceAllString(msg, "addr")
}

// classify maps fault-injector error text (internal/fault) to a verdict.
func classify(msg string) string {
	if !strings.Contains(msg, "fault:") {
		return ""
	}
	switch {
	case strings.Contains(msg, "is down"):
		return "crashed"
	case strings.Contains(msg, "blackholed"):
		return "blackholed"
	case strings.Contains(msg, "dropped"):
		return "dropped"
	}
	return "fault"
}
