package spans

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// TreeSpan is a span linked into its trace tree.
type TreeSpan struct {
	Span
	Children []*TreeSpan
}

// Trace is one assembled request tree. Roots normally holds exactly one
// span (a request mints one root); spans whose parent never appeared
// (truncated files) surface as extra roots rather than being dropped.
type Trace struct {
	ID    string
	Roots []*TreeSpan
	Count int // spans in the trace
}

// Root returns the primary root span (earliest start).
func (t *Trace) Root() *TreeSpan { return t.Roots[0] }

// NTC sums the transfer cost over every span in the trace. Because
// each span records only the cost it directly caused, the sum has no
// double counting and equals the accounted eq. 4 cost of the request.
func (t *Trace) NTC() int64 {
	var total int64
	for _, r := range t.Roots {
		walk(r, func(n *TreeSpan) { total += n.Span.NTC })
	}
	return total
}

// Dur returns the primary root's duration.
func (t *Trace) Dur() int64 { return t.Root().Dur() }

func walk(n *TreeSpan, f func(*TreeSpan)) {
	f(n)
	for _, c := range n.Children {
		walk(c, f)
	}
}

// Walk visits every span in the trace, parents before children.
func (t *Trace) Walk(f func(*TreeSpan)) {
	for _, r := range t.Roots {
		walk(r, f)
	}
}

// Assemble groups spans by trace ID and links parent/child edges.
// Traces are ordered by their root's start time (ties by trace ID) and
// children by start time, so the result is deterministic regardless of
// input order.
func Assemble(sps []Span) []*Trace {
	nodes := make(map[string]*TreeSpan, len(sps))
	order := make([]string, 0, len(sps))
	byTrace := make(map[string][]*TreeSpan)
	for i := range sps {
		n := &TreeSpan{Span: sps[i]}
		if _, dup := nodes[n.ID]; dup {
			// Duplicate span IDs come only from corrupted input; keep
			// the first occurrence.
			continue
		}
		nodes[n.ID] = n
		order = append(order, n.ID)
		byTrace[n.Trace] = append(byTrace[n.Trace], n)
	}
	var traces []*Trace
	for _, id := range order {
		n := nodes[id]
		if n.Parent != "" {
			if p, ok := nodes[n.Parent]; ok && p.Trace == n.Trace {
				p.Children = append(p.Children, n)
				continue
			}
		}
		// Root, or orphan whose parent is missing from the stream.
		tr := findTrace(&traces, n.Trace)
		tr.Roots = append(tr.Roots, n)
	}
	for _, tr := range traces {
		tr.Count = len(byTrace[tr.ID])
		sortTree(tr.Roots)
	}
	sort.Slice(traces, func(a, b int) bool {
		sa, sb := traces[a].Root().Start, traces[b].Root().Start
		if sa != sb {
			return sa < sb
		}
		return traces[a].ID < traces[b].ID
	})
	return traces
}

func findTrace(traces *[]*Trace, id string) *Trace {
	for _, t := range *traces {
		if t.ID == id {
			return t
		}
	}
	t := &Trace{ID: id}
	*traces = append(*traces, t)
	return t
}

func sortTree(ns []*TreeSpan) {
	sort.Slice(ns, func(a, b int) bool {
		if ns[a].Start != ns[b].Start {
			return ns[a].Start < ns[b].Start
		}
		return ns[a].ID < ns[b].ID
	})
	for _, n := range ns {
		sortTree(n.Children)
	}
}

// CriticalPath walks from the root to a leaf, at each level descending
// into the child that finishes last (the one the parent was waiting
// on), and returns the spans along that path, root first.
func CriticalPath(root *TreeSpan) []*TreeSpan {
	path := []*TreeSpan{root}
	for n := root; len(n.Children) > 0; {
		last := n.Children[0]
		for _, c := range n.Children[1:] {
			if c.End > last.End || (c.End == last.End && c.Start > last.Start) {
				last = c
			}
		}
		path = append(path, last)
		n = last
	}
	return path
}

// EdgeStat aggregates every span sharing a name: latency quantiles (in
// clock units) and the total transfer cost attributed at that edge.
type EdgeStat struct {
	Name     string
	Count    int
	Errors   int
	P50      int64
	P99      int64
	Max      int64
	TotalNTC int64
}

// Edges computes per-span-name statistics across traces, sorted by name.
func Edges(traces []*Trace) []EdgeStat {
	durs := make(map[string][]int64)
	stats := make(map[string]*EdgeStat)
	for _, t := range traces {
		t.Walk(func(n *TreeSpan) {
			st := stats[n.Name]
			if st == nil {
				st = &EdgeStat{Name: n.Name}
				stats[n.Name] = st
			}
			st.Count++
			if n.Err != "" {
				st.Errors++
			}
			st.TotalNTC += n.Span.NTC
			durs[n.Name] = append(durs[n.Name], n.Dur())
		})
	}
	out := make([]EdgeStat, 0, len(stats))
	for name, st := range stats {
		ds := durs[name]
		sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
		st.P50 = rankQuantile(ds, 0.50)
		st.P99 = rankQuantile(ds, 0.99)
		st.Max = ds[len(ds)-1]
		out = append(out, *st)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// rankQuantile is the nearest-rank quantile of an ascending slice.
func rankQuantile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Slowest returns up to n traces ordered by root duration, longest
// first (ties by trace order, which is start order).
func Slowest(traces []*Trace, n int) []*Trace {
	out := make([]*Trace, len(traces))
	copy(out, traces)
	sort.SliceStable(out, func(a, b int) bool { return out[a].Dur() > out[b].Dur() })
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// Label renders the span's topology fields compactly for reports.
func (n *TreeSpan) Label() string {
	var b strings.Builder
	b.WriteString(n.Name)
	var parts []string
	if n.Site >= 0 {
		parts = append(parts, fmt.Sprintf("site=%d", n.Site))
	}
	if n.Peer >= 0 {
		parts = append(parts, fmt.Sprintf("peer=%d", n.Peer))
	}
	if n.Object >= 0 {
		parts = append(parts, fmt.Sprintf("obj=%d", n.Object))
	}
	if n.Hop >= 0 {
		parts = append(parts, fmt.Sprintf("hop=%d", n.Hop))
	}
	if n.Attempt >= 0 {
		parts = append(parts, fmt.Sprintf("try=%d", n.Attempt))
	}
	if len(parts) > 0 {
		b.WriteString("(" + strings.Join(parts, " ") + ")")
	}
	return b.String()
}

// Waterfall renders the trace as an indented tree with proportional
// bars: each span's bar is offset and scaled within the root's
// [start, end] window. Deterministic for deterministic input.
func Waterfall(w io.Writer, t *Trace) {
	const width = 32
	root := t.Root()
	span := root.End - root.Start
	if span <= 0 {
		span = 1
	}
	fmt.Fprintf(w, "trace %s %s dur=%d ntc=%d\n", t.ID, root.Label(), root.Dur(), t.NTC())
	var render func(n *TreeSpan, depth int)
	render = func(n *TreeSpan, depth int) {
		off := int(float64(n.Start-root.Start) / float64(span) * width)
		length := int(float64(n.End-n.Start) / float64(span) * width)
		if length < 1 {
			length = 1
		}
		if off > width-1 {
			off = width - 1
		}
		if off+length > width {
			length = width - off
		}
		bar := strings.Repeat(" ", off) + strings.Repeat("#", length) +
			strings.Repeat(" ", width-off-length)
		line := strings.Repeat("  ", depth) + n.Label()
		if n.Span.NTC > 0 {
			line += fmt.Sprintf(" ntc=%d", n.Span.NTC)
		}
		if n.Verdict != "" {
			line += " verdict=" + n.Verdict
		}
		if n.Err != "" {
			line += fmt.Sprintf(" err=%q", n.Err)
		}
		fmt.Fprintf(w, "  [%s] %-4d %s\n", bar, n.Dur(), line)
		for _, c := range n.Children {
			render(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		render(r, 0)
	}
}
