package spans

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// maxLine bounds a single encoded span, protecting Decode from
// adversarial input (the codec is fuzzed).
const maxLine = 1 << 20

// Validate checks the structural invariants every well-formed span
// satisfies: identity fields present, the interval ordered, NTC
// non-negative, and topology indices at or above the -1 sentinel.
func (s *Span) Validate() error {
	switch {
	case s == nil:
		return fmt.Errorf("spans: nil span")
	case s.Trace == "":
		return fmt.Errorf("spans: empty trace id")
	case s.ID == "":
		return fmt.Errorf("spans: empty span id")
	case s.Name == "":
		return fmt.Errorf("spans: span %s has no name", s.ID)
	case s.End < s.Start:
		return fmt.Errorf("spans: span %s ends (%d) before it starts (%d)", s.ID, s.End, s.Start)
	case s.NTC < 0:
		return fmt.Errorf("spans: span %s has negative ntc %d", s.ID, s.NTC)
	case s.Site < -1 || s.Peer < -1 || s.Object < -1 || s.Hop < -1 || s.Attempt < -1:
		return fmt.Errorf("spans: span %s has index below -1 sentinel", s.ID)
	}
	return nil
}

// Encode writes spans as JSONL, one compact object per line — the same
// format the Writer exporter streams and Decode reads back.
func Encode(w io.Writer, sps []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range sps {
		if err := sps[i].Validate(); err != nil {
			return err
		}
		if err := enc.Encode(&sps[i]); err != nil {
			return fmt.Errorf("spans: encode: %w", err)
		}
	}
	return bw.Flush()
}

// Decode reads a JSONL span stream, validating every line. Blank lines
// are skipped so concatenated files decode cleanly.
func Decode(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLine)
	var out []Span
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var s Span
		dec := json.NewDecoder(bytes.NewReader(raw))
		if err := dec.Decode(&s); err != nil {
			return nil, fmt.Errorf("spans: line %d: %w", line, err)
		}
		// One object per line: trailing bytes mean a malformed stream.
		if dec.More() {
			return nil, fmt.Errorf("spans: line %d: trailing data after span object", line)
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("spans: line %d: %w", line, err)
		}
		// Normalize: an empty attrs object re-encodes as absent
		// (omitempty), so fold it to nil for round-trip stability.
		if len(s.Attrs) == 0 {
			s.Attrs = nil
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("spans: read: %w", err)
	}
	return out, nil
}
