package spans

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"

	"drp/internal/metrics"
)

// Exporter receives each span exactly once, at Finish time. Finish
// order is children-before-parents, and under serial traffic it is
// deterministic, so a streaming exporter's output is too. Exporters
// must be safe for concurrent use: server-side spans finish on
// connection-handler goroutines.
type Exporter interface {
	Export(s *Span)
}

// Writer streams spans as JSONL (the cmd/drptrace input format).
// Every span is flushed through to the underlying writer so a crash
// loses at most the span being written — mirroring the -events sink.
type Writer struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	err error
}

// NewWriter wraps w in a JSONL span exporter.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// Export writes one span as a JSON line. The first error sticks and is
// reported by Flush; later exports become no-ops.
func (e *Writer) Export(s *Span) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return
	}
	enc := json.NewEncoder(e.bw)
	if err := enc.Encode(s); err != nil {
		e.err = err
		return
	}
	e.err = e.bw.Flush()
}

// Flush drains buffered output and returns the first write error.
func (e *Writer) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return e.err
	}
	return e.bw.Flush()
}

// Collector gathers spans in memory, for tests and in-process analysis.
type Collector struct {
	mu    sync.Mutex
	spans []Span
}

// Export appends a copy of the span.
func (c *Collector) Export(s *Span) {
	cp := *s
	cp.tr = nil
	cp.done = false
	if s.Attrs != nil {
		cp.Attrs = make(map[string]string, len(s.Attrs))
		for k, v := range s.Attrs {
			cp.Attrs[k] = v
		}
	}
	c.mu.Lock()
	c.spans = append(c.spans, cp)
	c.mu.Unlock()
}

// Spans returns the collected spans in export order.
func (c *Collector) Spans() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Span, len(c.spans))
	copy(out, c.spans)
	return out
}

// Reset discards everything collected so far.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.spans = nil
	c.mu.Unlock()
}

// EventExporter bridges spans into a metrics.EventLog, so a run's
// -events JSONL stream interleaves "span" records with the existing
// solver/cluster events under one sink.
type EventExporter struct{ log *metrics.EventLog }

// NewEventExporter wraps an event log; nil yields a nil exporter, which
// composes with Multi.
func NewEventExporter(l *metrics.EventLog) *EventExporter {
	if l == nil {
		return nil
	}
	return &EventExporter{log: l}
}

// Export emits the span as an "span" event with flattened fields.
func (e *EventExporter) Export(s *Span) {
	fields := map[string]any{
		"trace": s.Trace,
		"span":  s.ID,
		"name":  s.Name,
		"start": s.Start,
		"end":   s.End,
		"ntc":   s.NTC,
	}
	if s.Parent != "" {
		fields["parent"] = s.Parent
	}
	if s.Site >= 0 {
		fields["site"] = s.Site
	}
	if s.Peer >= 0 {
		fields["peer"] = s.Peer
	}
	if s.Object >= 0 {
		fields["obj"] = s.Object
	}
	if s.Err != "" {
		fields["err"] = s.Err
	}
	if s.Verdict != "" {
		fields["verdict"] = s.Verdict
	}
	e.log.Emit("span", fields)
}

// multi fans spans out to several exporters in order.
type multi struct{ exps []Exporter }

// Multi composes exporters; nils are dropped. Returns nil when nothing
// remains, which disables tracing cleanly.
func Multi(exps ...Exporter) Exporter {
	var kept []Exporter
	for _, e := range exps {
		switch v := e.(type) {
		case nil:
			continue
		case *Writer:
			if v == nil {
				continue
			}
		case *Collector:
			if v == nil {
				continue
			}
		case *EventExporter:
			if v == nil {
				continue
			}
		}
		kept = append(kept, e)
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return &multi{exps: kept}
}

func (m *multi) Export(s *Span) {
	for _, e := range m.exps {
		e.Export(s)
	}
}
