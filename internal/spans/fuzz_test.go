package spans

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzSpanCodec feeds arbitrary bytes to the JSONL decoder. Anything
// it accepts must survive a canonical re-encode/re-decode round trip
// unchanged — the property cmd/drptrace and the CI trace-smoke golden
// rely on.
func FuzzSpanCodec(f *testing.F) {
	f.Add([]byte(`{"trace":"t1","span":"s1","name":"read","site":2,"peer":-1,"obj":5,"hop":-1,"attempt":-1,"start":1,"end":8,"ntc":0}` + "\n" +
		`{"trace":"t1","span":"s2","parent":"s1","name":"read.hop","site":-1,"peer":4,"obj":-1,"hop":0,"attempt":-1,"start":2,"end":7,"ntc":35,"err":"x","verdict":"crashed","attrs":{"k":"v"}}` + "\n"))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"trace":"t9","span":"s9","name":"sync","site":0,"peer":0,"obj":0,"hop":-1,"attempt":-1,"start":0,"end":0,"ntc":1}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sps, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := range sps {
			if verr := sps[i].Validate(); verr != nil {
				t.Fatalf("decode returned invalid span: %v", verr)
			}
		}
		var buf bytes.Buffer
		if err := Encode(&buf, sps); err != nil {
			t.Fatalf("re-encode of decoded spans failed: %v", err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decode of canonical encoding failed: %v", err)
		}
		if len(sps) == 0 {
			sps = nil
		}
		if !reflect.DeepEqual(sps, back) {
			t.Fatalf("round trip diverged:\n%v\n%v", sps, back)
		}
	})
}
