package spans

import (
	"strconv"
	"sync/atomic"
	"time"
)

// Clock supplies span timestamps. The tracing layer never feeds time
// back into replication decisions, so the clock only has to be
// monotonic per process, not synchronized.
type Clock interface {
	// Now returns the current reading. Logical clocks must be strictly
	// increasing so sibling spans never share a timestamp.
	Now() int64
}

// LogicalClock is a strictly increasing tick counter: every reading
// advances it by one. Under serial traffic this makes span timestamps —
// and therefore the whole span file — a pure function of the request
// sequence, which is what lets seeded chaos runs assert byte-identical
// span trees.
type LogicalClock struct{ n atomic.Int64 }

// NewLogicalClock returns a clock starting at tick 1.
func NewLogicalClock() *LogicalClock { return &LogicalClock{} }

// Now advances and returns the tick.
func (c *LogicalClock) Now() int64 { return c.n.Add(1) }

// WallClock reads the system clock in nanoseconds. Use it for live
// profiling; it trades byte-determinism for real durations.
type WallClock struct{}

// Now returns time.Now().UnixNano().
func (WallClock) Now() int64 { return time.Now().UnixNano() }

// Tracer mints trace and span IDs and hands finished spans to an
// Exporter. One Tracer is shared by every node in a cluster (and the
// coordinator), so IDs are globally unique and, under serial traffic,
// deterministic. A nil *Tracer is valid and produces nil spans
// everywhere, so instrumented code needs no tracing-enabled branches.
type Tracer struct {
	clock  Clock
	exp    Exporter
	sample int64

	roots  atomic.Int64 // all root requests seen (sampling denominator)
	traces atomic.Int64 // sampled traces (trace ID counter)
	spans  atomic.Int64 // span ID counter
}

// New returns a tracer exporting to exp with a fresh logical clock and
// no sampling (every root kept). Configure with SetClock/SetSample
// before the first span is created.
func New(exp Exporter) *Tracer {
	return &Tracer{clock: NewLogicalClock(), exp: exp, sample: 1}
}

// SetClock replaces the span clock. Not safe to call once spans exist.
func (t *Tracer) SetClock(c Clock) {
	if t != nil && c != nil {
		t.clock = c
	}
}

// SetSample keeps every nth root request (counter-based, so the choice
// is deterministic, not probabilistic); n < 1 is treated as 1.
func (t *Tracer) SetSample(n int64) {
	if t != nil {
		if n < 1 {
			n = 1
		}
		t.sample = n
	}
}

// Root opens a new trace for a client request. Returns nil when the
// tracer is nil or the sampler skips this request; the nil span then
// suppresses the whole tree, including wire propagation.
func (t *Tracer) Root(name string) *Span {
	if t == nil || t.exp == nil {
		return nil
	}
	if n := t.roots.Add(1); t.sample > 1 && (n-1)%t.sample != 0 {
		return nil
	}
	trace := "t" + strconv.FormatInt(t.traces.Add(1), 10)
	return t.start(trace, "", name)
}

// StartRemote opens a server-side span under wire-propagated context:
// the caller's trace ID and the exact attempt span that carried the
// message. Returns nil when the tracer is nil or the message carried no
// context (untraced or unsampled caller).
func (t *Tracer) StartRemote(trace, parent, name string) *Span {
	if t == nil || t.exp == nil || trace == "" {
		return nil
	}
	return t.start(trace, parent, name)
}

// start mints a span ID and stamps the start time.
func (t *Tracer) start(trace, parent, name string) *Span {
	return &Span{
		Trace:   trace,
		ID:      "s" + strconv.FormatInt(t.spans.Add(1), 10),
		Parent:  parent,
		Name:    name,
		Site:    -1,
		Peer:    -1,
		Object:  -1,
		Hop:     -1,
		Attempt: -1,
		Start:   t.clock.Now(),
		tr:      t,
	}
}
