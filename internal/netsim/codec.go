package netsim

import (
	"encoding/json"
	"fmt"
	"io"
)

// topologyJSON is the wire form of a Topology.
type topologyJSON struct {
	Sites int    `json:"sites"`
	Links []Link `json:"links"`
}

// Encode serialises the topology as JSON.
func (t *Topology) Encode(w io.Writer) error {
	return json.NewEncoder(w).Encode(topologyJSON{Sites: t.Sites, Links: t.Links})
}

// ReadTopology parses a JSON-encoded topology and validates every link.
func ReadTopology(r io.Reader) (*Topology, error) {
	var tj topologyJSON
	if err := json.NewDecoder(r).Decode(&tj); err != nil {
		return nil, fmt.Errorf("netsim: decode topology: %w", err)
	}
	if tj.Sites <= 0 {
		return nil, fmt.Errorf("netsim: topology needs at least one site, got %d", tj.Sites)
	}
	t := NewTopology(tj.Sites)
	for _, l := range tj.Links {
		if err := t.AddLink(l.From, l.To, l.Cost); err != nil {
			return nil, err
		}
	}
	return t, nil
}
