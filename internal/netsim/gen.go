package netsim

import (
	"fmt"

	"drp/internal/xrand"
)

// CompleteUniform generates the paper's network model (Section 6.1): every
// pair of sites is connected by a bidirectional link whose cost is drawn
// uniformly from [minCost, maxCost] — the paper uses [1, 10], representing
// TCP/IP hop counts. Note that with a complete graph the *shortest path*
// between two sites may still route through intermediates, which is why
// Distances() must be applied before the costs are used as C(i,j).
func CompleteUniform(n int, minCost, maxCost int64, rng *xrand.Source) *Topology {
	t := NewTopology(n)
	t.Links = make([]Link, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			t.Links = append(t.Links, Link{
				From: i,
				To:   j,
				Cost: int64(rng.IntRange(int(minCost), int(maxCost))),
			})
		}
	}
	return t
}

// Ring generates a cycle of n sites with uniform link costs.
func Ring(n int, minCost, maxCost int64, rng *xrand.Source) *Topology {
	t := NewTopology(n)
	for i := 0; i < n; i++ {
		cost := int64(rng.IntRange(int(minCost), int(maxCost)))
		mustAdd(t, i, (i+1)%n, cost)
	}
	return t
}

// Star generates a hub-and-spoke topology with site 0 as the hub.
func Star(n int, minCost, maxCost int64, rng *xrand.Source) *Topology {
	t := NewTopology(n)
	for i := 1; i < n; i++ {
		mustAdd(t, 0, i, int64(rng.IntRange(int(minCost), int(maxCost))))
	}
	return t
}

// Tree generates a random recursive tree: site i > 0 attaches to a uniformly
// chosen earlier site. Trees are the setting in which Wolfson et al.'s
// adaptive algorithm is optimal, so they make a useful comparison topology.
func Tree(n int, minCost, maxCost int64, rng *xrand.Source) *Topology {
	t := NewTopology(n)
	for i := 1; i < n; i++ {
		parent := rng.Intn(i)
		mustAdd(t, parent, i, int64(rng.IntRange(int(minCost), int(maxCost))))
	}
	return t
}

// Grid generates a rows×cols mesh with uniform link costs.
func Grid(rows, cols int, minCost, maxCost int64, rng *xrand.Source) *Topology {
	t := NewTopology(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustAdd(t, id(r, c), id(r, c+1), int64(rng.IntRange(int(minCost), int(maxCost))))
			}
			if r+1 < rows {
				mustAdd(t, id(r, c), id(r+1, c), int64(rng.IntRange(int(minCost), int(maxCost))))
			}
		}
	}
	return t
}

// Random generates a connected G(n,p)-style topology: a random spanning tree
// guarantees connectivity, then each remaining pair is linked with
// probability p.
func Random(n int, p float64, minCost, maxCost int64, rng *xrand.Source) *Topology {
	t := NewTopology(n)
	perm := rng.Perm(n)
	present := make(map[[2]int]bool, n)
	key := func(i, j int) [2]int {
		if i > j {
			i, j = j, i
		}
		return [2]int{i, j}
	}
	for idx := 1; idx < n; idx++ {
		a, b := perm[idx], perm[rng.Intn(idx)]
		mustAdd(t, a, b, int64(rng.IntRange(int(minCost), int(maxCost))))
		present[key(a, b)] = true
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if present[key(i, j)] || !rng.Bool(p) {
				continue
			}
			mustAdd(t, i, j, int64(rng.IntRange(int(minCost), int(maxCost))))
		}
	}
	return t
}

func mustAdd(t *Topology, from, to int, cost int64) {
	if err := t.AddLink(from, to, cost); err != nil {
		// Generators only produce valid endpoints and positive costs, so a
		// failure here is a programming error, not an input error.
		panic(fmt.Sprintf("netsim: generator produced invalid link: %v", err))
	}
}
