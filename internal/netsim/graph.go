// Package netsim models the communication network underneath the data
// replication problem: weighted site-to-site graphs, topology generators and
// all-pairs shortest-path distance matrices.
//
// The paper assumes C(i,j) — the per-unit transfer cost between sites i and
// j — is the cumulative cost of the cheapest path and is known a priori.
// This package produces exactly that: a Topology (explicit links) is reduced
// to a DistMatrix by an all-pairs shortest-path pass, and the DistMatrix is
// what the replication algorithms consume.
package netsim

import (
	"errors"
	"fmt"
)

// Link is a bidirectional edge between two sites with a positive per-unit
// transfer cost.
type Link struct {
	From, To int
	Cost     int64
}

// Topology is an undirected weighted graph over Sites sites.
type Topology struct {
	Sites int
	Links []Link
}

// NewTopology returns an empty topology over n sites.
func NewTopology(n int) *Topology {
	if n <= 0 {
		panic("netsim: topology needs at least one site")
	}
	return &Topology{Sites: n}
}

// AddLink appends a bidirectional link. Costs must be positive; endpoints
// must be distinct valid site indices.
func (t *Topology) AddLink(from, to int, cost int64) error {
	switch {
	case from < 0 || from >= t.Sites || to < 0 || to >= t.Sites:
		return fmt.Errorf("netsim: link %d-%d out of range for %d sites", from, to, t.Sites)
	case from == to:
		return fmt.Errorf("netsim: self-link at site %d", from)
	case cost <= 0:
		return fmt.Errorf("netsim: non-positive cost %d on link %d-%d", cost, from, to)
	}
	t.Links = append(t.Links, Link{From: from, To: to, Cost: cost})
	return nil
}

// Degree returns the number of links incident to each site.
func (t *Topology) Degree() []int {
	deg := make([]int, t.Sites)
	for _, l := range t.Links {
		deg[l.From]++
		deg[l.To]++
	}
	return deg
}

// ErrDisconnected is returned when a topology does not connect every pair of
// sites, so no finite distance matrix exists.
var ErrDisconnected = errors.New("netsim: topology is not connected")

// adjacency builds adjacency lists, keeping the cheapest parallel edge.
func (t *Topology) adjacency() [][]neighbor {
	adj := make([][]neighbor, t.Sites)
	for _, l := range t.Links {
		adj[l.From] = append(adj[l.From], neighbor{site: l.To, cost: l.Cost})
		adj[l.To] = append(adj[l.To], neighbor{site: l.From, cost: l.Cost})
	}
	return adj
}

type neighbor struct {
	site int
	cost int64
}

// Connected reports whether every site can reach every other site.
func (t *Topology) Connected() bool {
	adj := t.adjacency()
	seen := make([]bool, t.Sites)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range adj[v] {
			if !seen[nb.site] {
				seen[nb.site] = true
				count++
				stack = append(stack, nb.site)
			}
		}
	}
	return count == t.Sites
}
