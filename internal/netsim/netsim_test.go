package netsim

import (
	"errors"
	"testing"
	"testing/quick"

	"drp/internal/xrand"
)

func line(costs ...int64) *Topology {
	t := NewTopology(len(costs) + 1)
	for i, c := range costs {
		if err := t.AddLink(i, i+1, c); err != nil {
			panic(err)
		}
	}
	return t
}

func TestAddLinkValidation(t *testing.T) {
	topo := NewTopology(3)
	tests := []struct {
		name     string
		from, to int
		cost     int64
		wantErr  bool
	}{
		{"valid", 0, 1, 5, false},
		{"self link", 1, 1, 5, true},
		{"negative cost", 0, 2, -1, true},
		{"zero cost", 0, 2, 0, true},
		{"from out of range", -1, 2, 1, true},
		{"to out of range", 0, 3, 1, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := topo.AddLink(tt.from, tt.to, tt.cost)
			if (err != nil) != tt.wantErr {
				t.Fatalf("AddLink(%d,%d,%d) error = %v, wantErr %v", tt.from, tt.to, tt.cost, err, tt.wantErr)
			}
		})
	}
}

func TestLineDistances(t *testing.T) {
	topo := line(2, 3, 4) // 0-1-2-3 with costs 2,3,4
	dm, err := topo.Distances()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{
		{0, 2, 5, 9},
		{2, 0, 3, 7},
		{5, 3, 0, 4},
		{9, 7, 4, 0},
	}
	for i := range want {
		for j := range want[i] {
			if got := dm.At(i, j); got != want[i][j] {
				t.Errorf("At(%d,%d) = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
}

func TestShortestPathRoutesAroundExpensiveLink(t *testing.T) {
	topo := NewTopology(3)
	for _, l := range []Link{{0, 1, 10}, {1, 2, 1}, {0, 2, 1}} {
		if err := topo.AddLink(l.From, l.To, l.Cost); err != nil {
			t.Fatal(err)
		}
	}
	dm, err := topo.Distances()
	if err != nil {
		t.Fatal(err)
	}
	// Direct 0-1 costs 10, but 0-2-1 costs 2.
	if got := dm.At(0, 1); got != 2 {
		t.Fatalf("At(0,1) = %d, want 2", got)
	}
}

func TestDisconnected(t *testing.T) {
	topo := NewTopology(4)
	if err := topo.AddLink(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink(2, 3, 1); err != nil {
		t.Fatal(err)
	}
	if topo.Connected() {
		t.Fatal("disconnected topology reported connected")
	}
	if _, err := topo.Distances(); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("Distances error = %v, want ErrDisconnected", err)
	}
}

func TestSingleSite(t *testing.T) {
	dm := NewDistMatrix(1)
	if dm.At(0, 0) != 0 {
		t.Fatal("single-site distance not zero")
	}
}

func TestFloydWarshallMatchesDijkstra(t *testing.T) {
	rng := xrand.New(5)
	for trial := 0; trial < 10; trial++ {
		topo := Random(12, 0.3, 1, 10, rng)
		fw, err := topo.floydWarshall()
		if err != nil {
			t.Fatal(err)
		}
		dj, err := topo.allDijkstra()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			for j := 0; j < 12; j++ {
				if fw.At(i, j) != dj.At(i, j) {
					t.Fatalf("trial %d: FW(%d,%d)=%d, Dijkstra=%d", trial, i, j, fw.At(i, j), dj.At(i, j))
				}
			}
		}
	}
}

func TestDistancePropertiesOnRandomTopologies(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		topo := CompleteUniform(8, 1, 10, rng)
		dm, err := topo.Distances()
		if err != nil {
			return false
		}
		if dm.Validate() != nil {
			return false
		}
		// Triangle inequality must hold for shortest-path metrics.
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				for k := 0; k < 8; k++ {
					if dm.At(i, j) > dm.At(i, k)+dm.At(k, j) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerators(t *testing.T) {
	rng := xrand.New(1)
	tests := []struct {
		name      string
		topo      *Topology
		wantSites int
		wantLinks int
	}{
		{"complete", CompleteUniform(6, 1, 10, rng), 6, 15},
		{"ring", Ring(5, 1, 10, rng), 5, 5},
		{"star", Star(7, 1, 10, rng), 7, 6},
		{"tree", Tree(9, 1, 10, rng), 9, 8},
		{"grid", Grid(3, 4, 1, 10, rng), 12, 17},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.topo.Sites != tt.wantSites {
				t.Errorf("sites = %d, want %d", tt.topo.Sites, tt.wantSites)
			}
			if len(tt.topo.Links) != tt.wantLinks {
				t.Errorf("links = %d, want %d", len(tt.topo.Links), tt.wantLinks)
			}
			if !tt.topo.Connected() {
				t.Error("generator produced disconnected topology")
			}
			for _, l := range tt.topo.Links {
				if l.Cost < 1 || l.Cost > 10 {
					t.Errorf("link cost %d outside [1,10]", l.Cost)
				}
			}
			if _, err := tt.topo.Distances(); err != nil {
				t.Errorf("Distances: %v", err)
			}
		})
	}
}

func TestRandomTopologyConnected(t *testing.T) {
	rng := xrand.New(2)
	for trial := 0; trial < 20; trial++ {
		topo := Random(15, 0.05, 1, 10, rng)
		if !topo.Connected() {
			t.Fatalf("trial %d: Random produced disconnected topology", trial)
		}
	}
}

func TestDegree(t *testing.T) {
	topo := Star(5, 1, 1, xrand.New(1))
	deg := topo.Degree()
	if deg[0] != 4 {
		t.Fatalf("hub degree = %d, want 4", deg[0])
	}
	for i := 1; i < 5; i++ {
		if deg[i] != 1 {
			t.Fatalf("spoke %d degree = %d, want 1", i, deg[i])
		}
	}
}

func TestRowSumAndMeanRowSum(t *testing.T) {
	dm := NewDistMatrix(3)
	dm.Set(0, 1, 2)
	dm.Set(0, 2, 4)
	dm.Set(1, 2, 6)
	if got := dm.RowSum(0); got != 6 {
		t.Fatalf("RowSum(0) = %d, want 6", got)
	}
	// Total = 2*(2+4+6) = 24; mean row sum = 8.
	if got := dm.MeanRowSum(); got != 8 {
		t.Fatalf("MeanRowSum = %v, want 8", got)
	}
}

func TestValidate(t *testing.T) {
	dm := NewDistMatrix(2)
	if err := dm.Validate(); err == nil {
		t.Fatal("zero off-diagonal passed validation")
	}
	dm.Set(0, 1, 3)
	if err := dm.Validate(); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
}

func TestDistMatrixStats(t *testing.T) {
	topo := line(2, 3, 4) // 0-1-2-3: distances up to 9
	dm, err := topo.Distances()
	if err != nil {
		t.Fatal(err)
	}
	st := dm.Stats()
	if st.Diameter != 9 {
		t.Fatalf("diameter %d, want 9", st.Diameter)
	}
	// Eccentricities: site0=9, site1=7, site2=5, site3=9 → radius 5 at 2.
	if st.Radius != 5 || st.Center != 2 {
		t.Fatalf("radius %d at %d, want 5 at 2", st.Radius, st.Center)
	}
	// Pairs: (0,1)=2 (0,2)=5 (0,3)=9 (1,2)=3 (1,3)=7 (2,3)=4 → mean 5.
	if st.MeanDistance != 5 {
		t.Fatalf("mean distance %v, want 5", st.MeanDistance)
	}
	if len(st.Eccentricity) != 4 || st.Eccentricity[1] != 7 {
		t.Fatalf("eccentricities %v", st.Eccentricity)
	}
}

func TestStatsSingleSite(t *testing.T) {
	st := NewDistMatrix(1).Stats()
	if st.Diameter != 0 || st.MeanDistance != 0 || st.Radius != 0 {
		t.Fatal("single-site stats not zero")
	}
}
