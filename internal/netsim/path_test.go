package netsim

import (
	"bytes"
	"testing"

	"drp/internal/xrand"
)

func TestShortestPathOnLine(t *testing.T) {
	topo := line(2, 3, 4) // 0-1-2-3
	path, err := topo.ShortestPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if path.Cost != 9 {
		t.Fatalf("cost %d, want 9", path.Cost)
	}
	want := []int{0, 1, 2, 3}
	if len(path.Sites) != len(want) {
		t.Fatalf("path %v", path.Sites)
	}
	for i, s := range want {
		if path.Sites[i] != s {
			t.Fatalf("path %v, want %v", path.Sites, want)
		}
	}
}

func TestShortestPathRoutesViaIntermediate(t *testing.T) {
	topo := NewTopology(3)
	for _, l := range []Link{{0, 1, 10}, {1, 2, 1}, {0, 2, 1}} {
		if err := topo.AddLink(l.From, l.To, l.Cost); err != nil {
			t.Fatal(err)
		}
	}
	path, err := topo.ShortestPath(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if path.Cost != 2 || len(path.Sites) != 3 || path.Sites[1] != 2 {
		t.Fatalf("path %v cost %d, want 0-2-1 cost 2", path.Sites, path.Cost)
	}
}

func TestShortestPathSelf(t *testing.T) {
	topo := line(1)
	path, err := topo.ShortestPath(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if path.Cost != 0 || len(path.Sites) != 1 {
		t.Fatalf("self path %v cost %d", path.Sites, path.Cost)
	}
}

func TestShortestPathErrors(t *testing.T) {
	topo := NewTopology(4)
	if err := topo.AddLink(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.ShortestPath(0, 9); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	if _, err := topo.ShortestPath(0, 3); err == nil {
		t.Fatal("disconnected pair produced a path")
	}
}

func TestShortestPathCostMatchesDistanceMatrix(t *testing.T) {
	rng := xrand.New(3)
	topo := Random(12, 0.25, 1, 10, rng)
	dm, err := topo.Distances()
	if err != nil {
		t.Fatal(err)
	}
	for from := 0; from < 12; from++ {
		for to := 0; to < 12; to++ {
			path, err := topo.ShortestPath(from, to)
			if err != nil {
				t.Fatal(err)
			}
			if path.Cost != dm.At(from, to) {
				t.Fatalf("path cost (%d,%d) = %d, matrix = %d", from, to, path.Cost, dm.At(from, to))
			}
			// The path must be a real walk over existing links with the
			// claimed total cost.
			var total int64
			for i := 1; i < len(path.Sites); i++ {
				total += linkCost(t, topo, path.Sites[i-1], path.Sites[i])
			}
			if total != path.Cost {
				t.Fatalf("path %v claims %d, links sum to %d", path.Sites, path.Cost, total)
			}
		}
	}
}

func linkCost(t *testing.T, topo *Topology, a, b int) int64 {
	t.Helper()
	best := int64(-1)
	for _, l := range topo.Links {
		if (l.From == a && l.To == b) || (l.From == b && l.To == a) {
			if best < 0 || l.Cost < best {
				best = l.Cost
			}
		}
	}
	if best < 0 {
		t.Fatalf("path uses non-existent link %d-%d", a, b)
	}
	return best
}

func TestTopologyCodecRoundTrip(t *testing.T) {
	topo := Random(8, 0.3, 1, 10, xrand.New(5))
	var buf bytes.Buffer
	if err := topo.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadTopology(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Sites != topo.Sites || len(loaded.Links) != len(topo.Links) {
		t.Fatal("topology round-trip lost structure")
	}
	a, err := topo.Distances()
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Distances()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < topo.Sites; i++ {
		for j := 0; j < topo.Sites; j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatal("distances differ after round-trip")
			}
		}
	}
}

func TestReadTopologyRejectsGarbage(t *testing.T) {
	if _, err := ReadTopology(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadTopology(bytes.NewReader([]byte(`{"sites":0}`))); err == nil {
		t.Fatal("zero sites accepted")
	}
	if _, err := ReadTopology(bytes.NewReader([]byte(`{"sites":2,"links":[{"From":0,"To":5,"Cost":1}]}`))); err == nil {
		t.Fatal("out-of-range link accepted")
	}
}
