package netsim

// FuzzDistances cross-checks the two all-pairs shortest-path engines —
// Floyd–Warshall (dense topologies) and repeated Dijkstra (sparse ones) —
// on arbitrary fuzz-built topologies, then spot-checks ShortestPath's
// explicit routes against the agreed matrix. Distances() picks one engine
// by density, so production only ever runs one of them per topology; this
// target is where they are forced to agree.

import (
	"testing"
)

// buildTopology decodes a fuzz byte stream into a topology: three bytes per
// link (from, to, cost).
func buildTopology(sites uint8, links []byte) *Topology {
	n := int(sites)%10 + 2
	t := NewTopology(n)
	for j := 0; j+2 < len(links); j += 3 {
		from, to := int(links[j])%n, int(links[j+1])%n
		cost := int64(links[j+2])%50 + 1
		if from == to {
			continue
		}
		_ = t.AddLink(from, to, cost)
	}
	return t
}

func FuzzDistances(f *testing.F) {
	f.Add(uint8(3), []byte{0, 1, 3, 1, 2, 4, 2, 3, 5, 3, 4, 1, 4, 0, 9})
	f.Add(uint8(2), []byte{0, 1, 1, 1, 2, 1, 2, 3, 1})
	f.Add(uint8(6), []byte{0, 1, 10})
	f.Add(uint8(0), []byte{})
	f.Fuzz(func(t *testing.T, sites uint8, links []byte) {
		topo := buildTopology(sites, links)
		fw, errFW := topo.floydWarshall()
		dj, errDJ := topo.allDijkstra()
		if (errFW == nil) != (errDJ == nil) {
			t.Fatalf("engines disagree on connectivity: floydWarshall=%v allDijkstra=%v", errFW, errDJ)
		}
		if errFW != nil {
			return
		}
		n := topo.Sites
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if fw.At(i, j) != dj.At(i, j) {
					t.Fatalf("C(%d,%d): floydWarshall %d != allDijkstra %d", i, j, fw.At(i, j), dj.At(i, j))
				}
			}
		}
		if err := fw.Validate(); err != nil {
			t.Fatalf("agreed matrix fails validation: %v", err)
		}
		// Explicit routes must realise the matrix costs over real links.
		minLink := func(a, b int) int64 {
			best := int64(-1)
			for _, l := range topo.Links {
				if (l.From == a && l.To == b) || (l.From == b && l.To == a) {
					if best < 0 || l.Cost < best {
						best = l.Cost
					}
				}
			}
			return best
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				path, err := topo.ShortestPath(i, j)
				if err != nil {
					t.Fatalf("ShortestPath(%d,%d) on a connected topology: %v", i, j, err)
				}
				if path.Cost != fw.At(i, j) {
					t.Fatalf("ShortestPath(%d,%d) cost %d, matrix says %d", i, j, path.Cost, fw.At(i, j))
				}
				if len(path.Sites) == 0 || path.Sites[0] != i || path.Sites[len(path.Sites)-1] != j {
					t.Fatalf("ShortestPath(%d,%d) endpoints wrong: %v", i, j, path.Sites)
				}
				var sum int64
				for h := 1; h < len(path.Sites); h++ {
					c := minLink(path.Sites[h-1], path.Sites[h])
					if c < 0 {
						t.Fatalf("ShortestPath(%d,%d) crosses missing link %d-%d", i, j, path.Sites[h-1], path.Sites[h])
					}
					sum += c
				}
				if sum != path.Cost {
					t.Fatalf("ShortestPath(%d,%d) links sum to %d, path claims %d", i, j, sum, path.Cost)
				}
			}
		}
	})
}
