package netsim

import (
	"container/heap"
	"fmt"
)

// Path is a site sequence from Sites[0] to Sites[len-1] with its total
// per-unit transfer cost.
type Path struct {
	Sites []int
	Cost  int64
}

// ShortestPath returns one cheapest path between from and to (ties broken
// toward lower site indices, deterministically). The DistMatrix only keeps
// costs; route inspection — e.g. to report which links a replica migration
// crosses — needs the explicit path.
func (t *Topology) ShortestPath(from, to int) (Path, error) {
	if from < 0 || from >= t.Sites || to < 0 || to >= t.Sites {
		return Path{}, fmt.Errorf("netsim: path endpoints %d-%d out of range", from, to)
	}
	if from == to {
		return Path{Sites: []int{from}}, nil
	}
	adj := t.adjacency()
	dist := make([]int64, t.Sites)
	prev := make([]int, t.Sites)
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	dist[from] = 0
	q := pq{{site: from}}
	for len(q) > 0 {
		item := heap.Pop(&q).(pqItem)
		if item.dist > dist[item.site] {
			continue
		}
		for _, nb := range adj[item.site] {
			v := item.dist + nb.cost
			if v < dist[nb.site] || (v == dist[nb.site] && prev[nb.site] >= 0 && item.site < prev[nb.site]) {
				dist[nb.site] = v
				prev[nb.site] = item.site
				heap.Push(&q, pqItem{site: nb.site, dist: v})
			}
		}
	}
	if dist[to] >= inf {
		return Path{}, ErrDisconnected
	}
	var rev []int
	for at := to; at != -1; at = prev[at] {
		rev = append(rev, at)
	}
	sites := make([]int, len(rev))
	for i, s := range rev {
		sites[len(rev)-1-i] = s
	}
	return Path{Sites: sites, Cost: dist[to]}, nil
}
