package netsim

import (
	"container/heap"
	"fmt"
	"math"
)

// DistMatrix holds all-pairs shortest-path per-unit transfer costs: the
// C(i,j) of the paper. It is symmetric with a zero diagonal.
type DistMatrix struct {
	n int
	// d is the flattened n×n matrix; d[i*n+j] = C(i,j).
	d []int64
}

// NewDistMatrix returns an n×n zero matrix.
func NewDistMatrix(n int) *DistMatrix {
	if n <= 0 {
		panic("netsim: distance matrix needs at least one site")
	}
	return &DistMatrix{n: n, d: make([]int64, n*n)}
}

// Sites returns the number of sites.
func (m *DistMatrix) Sites() int { return m.n }

// At returns C(i,j).
func (m *DistMatrix) At(i, j int) int64 { return m.d[i*m.n+j] }

// Row returns the i-th row as a read-only view. Callers must not modify it.
func (m *DistMatrix) Row(i int) []int64 { return m.d[i*m.n : (i+1)*m.n] }

// Set assigns both C(i,j) and C(j,i); the matrix stays symmetric by
// construction. Callers building matrices by hand should finish with
// Validate.
func (m *DistMatrix) Set(i, j int, v int64) {
	m.d[i*m.n+j] = v
	m.d[j*m.n+i] = v
}

// RowSum returns Σ_x C(i,x), used by the AGRA replica-benefit estimator.
func (m *DistMatrix) RowSum(i int) int64 {
	var sum int64
	for _, v := range m.Row(i) {
		sum += v
	}
	return sum
}

// MeanRowSum returns (Σ_l Σ_x C(l,x)) / M, the normaliser of the estimator's
// "proportional link weight" term.
func (m *DistMatrix) MeanRowSum() float64 {
	var total int64
	for _, v := range m.d {
		total += v
	}
	return float64(total) / float64(m.n)
}

// Validate checks symmetry, a zero diagonal and positive off-diagonal costs.
func (m *DistMatrix) Validate() error {
	for i := 0; i < m.n; i++ {
		if m.At(i, i) != 0 {
			return fmt.Errorf("netsim: non-zero diagonal at %d", i)
		}
		for j := i + 1; j < m.n; j++ {
			switch {
			case m.At(i, j) != m.At(j, i):
				return fmt.Errorf("netsim: asymmetric costs at (%d,%d)", i, j)
			case m.At(i, j) <= 0:
				return fmt.Errorf("netsim: non-positive cost at (%d,%d)", i, j)
			}
		}
	}
	return nil
}

// Distances computes the all-pairs shortest-path matrix of the topology.
// Dense topologies (links ≥ sites²/4) use Floyd-Warshall; sparse ones run
// Dijkstra from every source. Returns ErrDisconnected if some pair is
// unreachable.
func (t *Topology) Distances() (*DistMatrix, error) {
	if len(t.Links) >= t.Sites*t.Sites/4 {
		return t.floydWarshall()
	}
	return t.allDijkstra()
}

const inf = math.MaxInt64 / 4

func (t *Topology) floydWarshall() (*DistMatrix, error) {
	n := t.Sites
	m := NewDistMatrix(n)
	for i := range m.d {
		m.d[i] = inf
	}
	for i := 0; i < n; i++ {
		m.d[i*n+i] = 0
	}
	for _, l := range t.Links {
		if l.Cost < m.At(l.From, l.To) {
			m.Set(l.From, l.To, l.Cost)
		}
	}
	for k := 0; k < n; k++ {
		rowK := m.d[k*n : (k+1)*n]
		for i := 0; i < n; i++ {
			dik := m.d[i*n+k]
			if dik == inf {
				continue
			}
			rowI := m.d[i*n : (i+1)*n]
			for j, dkj := range rowK {
				if v := dik + dkj; v < rowI[j] {
					rowI[j] = v
				}
			}
		}
	}
	for _, v := range m.d {
		if v >= inf {
			return nil, ErrDisconnected
		}
	}
	return m, nil
}

type pqItem struct {
	site int
	dist int64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

func (t *Topology) allDijkstra() (*DistMatrix, error) {
	n := t.Sites
	adj := t.adjacency()
	m := NewDistMatrix(n)
	dist := make([]int64, n)
	for src := 0; src < n; src++ {
		for i := range dist {
			dist[i] = inf
		}
		dist[src] = 0
		q := pq{{site: src}}
		for len(q) > 0 {
			item := heap.Pop(&q).(pqItem)
			if item.dist > dist[item.site] {
				continue
			}
			for _, nb := range adj[item.site] {
				if v := item.dist + nb.cost; v < dist[nb.site] {
					dist[nb.site] = v
					heap.Push(&q, pqItem{site: nb.site, dist: v})
				}
			}
		}
		for j, v := range dist {
			if v >= inf {
				return nil, ErrDisconnected
			}
			m.d[src*n+j] = v
		}
	}
	return m, nil
}
