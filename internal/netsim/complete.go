package netsim

// Complete builds the complete-graph topology of a validated distance
// matrix: one direct link per site pair, carrying the matrix entry as its
// cost. Because a shortest-path matrix obeys the triangle inequality,
// every subgraph induced on a subset of sites reproduces the original
// pairwise distances exactly — which makes Complete the canonical way to
// lift an existing Problem's C(i,j) into a membership universe when the
// underlying link topology is no longer known.
func Complete(d *DistMatrix) *Topology {
	t := NewTopology(d.Sites())
	for i := 0; i < d.Sites(); i++ {
		for j := i + 1; j < d.Sites(); j++ {
			t.Links = append(t.Links, Link{From: i, To: j, Cost: d.At(i, j)})
		}
	}
	return t
}
