package netsim

// Stats summarises a distance matrix for workload reports: how big the
// network is in cost terms and how central each site sits.
type Stats struct {
	// Diameter is the largest pairwise cost; MeanDistance averages all
	// off-diagonal pairs.
	Diameter     int64
	MeanDistance float64
	// Eccentricity[i] is site i's distance to the farthest site; the
	// radius is the smallest eccentricity and Center a site achieving it.
	Eccentricity []int64
	Radius       int64
	Center       int
}

// Stats computes summary statistics of the matrix. A single-site network
// yields zeros.
func (m *DistMatrix) Stats() Stats {
	st := Stats{Eccentricity: make([]int64, m.n)}
	if m.n < 2 {
		return st
	}
	var total int64
	for i := 0; i < m.n; i++ {
		var ecc int64
		for j := 0; j < m.n; j++ {
			d := m.At(i, j)
			if d > ecc {
				ecc = d
			}
			if i < j {
				total += d
			}
		}
		st.Eccentricity[i] = ecc
		if ecc > st.Diameter {
			st.Diameter = ecc
		}
	}
	st.MeanDistance = float64(total) / float64(m.n*(m.n-1)/2)
	st.Radius = st.Eccentricity[0]
	for i, e := range st.Eccentricity {
		if e < st.Radius {
			st.Radius = e
			st.Center = i
		}
	}
	return st
}
