// Package experiments regenerates every figure of the paper's evaluation
// (Section 6): the static SRA/GRA sweeps over network size, object count,
// update ratio and storage capacity (Figures 1–3), and the adaptive AGRA
// scenarios (Figure 4). Each figure is produced as a FigureResult — named
// series over a shared x-axis — that the drpbench command renders as a
// table and the benchmarks consume programmatically.
package experiments

import (
	"fmt"
	"time"

	"drp/internal/agra"
	"drp/internal/gra"
	"drp/internal/solver"
)

// Config sizes an experiment campaign. The paper's exact dimensions are in
// Paper(); Quick() trades fidelity for wall-clock time on small machines;
// Tiny() exists for unit tests and benchmarks of the harness itself.
type Config struct {
	// Networks is the number of random networks averaged per data point
	// (paper: 15).
	Networks int
	// Seed derives every workload and algorithm seed; campaigns are fully
	// reproducible.
	Seed uint64
	// Parallelism caps how many (point, network) cells of a sweep run
	// concurrently. Every cell derives its seeds from pointSeed alone and
	// writes its measurements into an index-addressed slot reduced in input
	// order, so campaign results are bit-identical at any setting (timings,
	// of course, vary). 0 means GOMAXPROCS; 1 runs fully serial.
	Parallelism int

	// GRAPop/GRAGens parameterise the static GRA (paper: 50/80).
	GRAPop  int
	GRAGens int
	// MedGens and LongGens are the "Current + 80 GRA" and "150 GRA" policy
	// budgets of Section 6.3 (paper: 80/150).
	MedGens  int
	LongGens int
	// AGRAPop/AGRAGens parameterise the adaptive micro-GA (paper: 10/50).
	AGRAPop  int
	AGRAGens int

	// Figure 1(a)/(b) and 2(a)/(b): sites sweep at fixed object count.
	SitesSweep  []int
	Fig1Objects int // paper: 150
	// Figure 1(c)/(d): objects sweep at fixed site count.
	ObjectsSweep []int
	Fig1cSites   int // paper: 100
	// Update ratios overlaid on Figures 1–2 (paper: 2%, 5%, 10%).
	UpdateRatios []float64

	// Figure 3(a): update-ratio sweep; 3(b): capacity sweep.
	UpdateSweep   []float64
	CapacitySweep []float64
	Fig3Sites     int
	Fig3Objects   int

	// Figure 4: the adaptive test case (paper: M=50, N=200, U=5%, C=15%,
	// Ch=600%).
	AdaptSites     int
	AdaptObjects   int
	Ch             float64
	OChSweep       []float64 // fraction of objects changing (Fig 4a/4b/4d)
	MixSweep       []float64 // read share of changes (Fig 4c)
	MixObjectShare float64   // OCh held fixed in Fig 4c

	// Shared workload constants.
	BaseUpdateRatio   float64 // paper: 5%
	BaseCapacityRatio float64 // paper: 15%

	// CellTimeout and CellBudget time-box every genetic-algorithm run a
	// campaign performs (GRA, AGRA and hill climb; SRA and the trivial
	// baselines stay unbounded — they are never the bottleneck): each run
	// gets at most this much wall-clock and this many cost-model
	// evaluations, returning its best scheme so far when the cap fires.
	// They let `-preset paper` finish in bounded time at the price of
	// truncated GA runs (which the figures then reflect); budgeted results
	// stay reproducible, timed-out ones inherently do not. Zero values
	// leave runs unbounded.
	CellTimeout time.Duration
	CellBudget  int
	// Observer, when set, receives every solver's per-generation progress
	// events. Cells run concurrently, so it must be safe for concurrent
	// use — wrap with solver.Synchronized.
	Observer solver.Observer
}

// Paper returns the paper's full experiment dimensions. A complete campaign
// at this setting takes hours on a laptop-class machine, exactly as the
// original did on a 200 MHz UltraSPARC.
func Paper() Config {
	return Config{
		Networks:          15,
		Seed:              1,
		GRAPop:            50,
		GRAGens:           80,
		MedGens:           80,
		LongGens:          150,
		AGRAPop:           10,
		AGRAGens:          50,
		SitesSweep:        []int{20, 40, 60, 80, 100},
		Fig1Objects:       150,
		ObjectsSweep:      []int{100, 250, 400, 550, 700, 850, 1000},
		Fig1cSites:        100,
		UpdateRatios:      []float64{0.02, 0.05, 0.10},
		UpdateSweep:       []float64{0.005, 0.01, 0.02, 0.05, 0.10, 0.20},
		CapacitySweep:     []float64{0.10, 0.15, 0.20, 0.25, 0.30},
		Fig3Sites:         50,
		Fig3Objects:       200,
		AdaptSites:        50,
		AdaptObjects:      200,
		Ch:                6.0,
		OChSweep:          []float64{0.10, 0.20, 0.30},
		MixSweep:          []float64{0, 0.25, 0.50, 0.75, 1.0},
		MixObjectShare:    0.30,
		BaseUpdateRatio:   0.05,
		BaseCapacityRatio: 0.15,
	}
}

// Quick returns a campaign sized for a single-core CI box: the same sweeps
// and algorithms with fewer averaged networks and smaller GA budgets. The
// qualitative shapes survive; absolute savings drift a little from the
// paper-sized GA budgets.
func Quick() Config {
	cfg := Paper()
	cfg.Networks = 2
	cfg.GRAPop = 24
	cfg.GRAGens = 30
	cfg.MedGens = 30
	cfg.LongGens = 60
	cfg.SitesSweep = []int{20, 40, 60, 80}
	cfg.Fig1Objects = 100
	cfg.ObjectsSweep = []int{100, 200, 400}
	cfg.Fig1cSites = 50
	cfg.UpdateSweep = []float64{0.005, 0.02, 0.05, 0.10, 0.20}
	cfg.OChSweep = []float64{0.10, 0.20, 0.30}
	return cfg
}

// Tiny returns a seconds-scale campaign for tests and harness benchmarks.
func Tiny() Config {
	cfg := Paper()
	cfg.Networks = 1
	cfg.GRAPop = 10
	cfg.GRAGens = 10
	cfg.MedGens = 8
	cfg.LongGens = 10
	cfg.AGRAPop = 6
	cfg.AGRAGens = 8
	cfg.SitesSweep = []int{8, 12}
	cfg.Fig1Objects = 20
	cfg.ObjectsSweep = []int{15, 30}
	cfg.Fig1cSites = 10
	cfg.UpdateRatios = []float64{0.02, 0.10}
	cfg.UpdateSweep = []float64{0.02, 0.10}
	cfg.CapacitySweep = []float64{0.10, 0.30}
	cfg.Fig3Sites = 10
	cfg.Fig3Objects = 20
	cfg.AdaptSites = 10
	cfg.AdaptObjects = 20
	cfg.OChSweep = []float64{0.20}
	cfg.MixSweep = []float64{0, 1.0}
	return cfg
}

func (cfg Config) validate() error {
	switch {
	case cfg.Networks < 1:
		return fmt.Errorf("experiments: need at least one network, got %d", cfg.Networks)
	case cfg.GRAPop < 2 || cfg.GRAGens < 0:
		return fmt.Errorf("experiments: bad GRA budget %d/%d", cfg.GRAPop, cfg.GRAGens)
	case cfg.AGRAPop < 2 || cfg.AGRAGens < 0:
		return fmt.Errorf("experiments: bad AGRA budget %d/%d", cfg.AGRAPop, cfg.AGRAGens)
	case cfg.Parallelism < 0:
		return fmt.Errorf("experiments: negative parallelism %d", cfg.Parallelism)
	case cfg.CellTimeout < 0:
		return fmt.Errorf("experiments: negative cell timeout %v", cfg.CellTimeout)
	case cfg.CellBudget < 0:
		return fmt.Errorf("experiments: negative cell budget %d", cfg.CellBudget)
	}
	return nil
}

// cellRun bundles the campaign's per-run anytime controls.
func (cfg Config) cellRun() solver.Run {
	return solver.Run{Timeout: cfg.CellTimeout, Budget: cfg.CellBudget, Observer: cfg.Observer}
}

// graParams and agraParams pin the inner algorithms to serial evaluation:
// campaigns parallelise across (point, network) cells, and nesting a second
// worker pool inside each cell would only oversubscribe the machine. The
// single-run entry points in extra.go override this with cfg.Parallelism.
func (cfg Config) graParams(seed uint64) gra.Params {
	p := gra.DefaultParams()
	p.PopSize = cfg.GRAPop
	p.Generations = cfg.GRAGens
	p.Seed = seed
	p.Parallelism = 1
	return p
}

func (cfg Config) agraParams(seed uint64) agra.Params {
	p := agra.DefaultParams()
	p.PopSize = cfg.AGRAPop
	p.Generations = cfg.AGRAGens
	p.Seed = seed
	p.Parallelism = 1
	return p
}

// pointSeed derives a reproducible seed for one (figure, point, network)
// combination from the campaign seed.
func (cfg Config) pointSeed(parts ...uint64) uint64 {
	h := cfg.Seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for _, p := range parts {
		h ^= p + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h *= 0xff51afd7ed558ccd
	}
	return h
}
