package experiments

import (
	"fmt"
	"math"

	"drp/internal/agra"
	"drp/internal/bitset"
	"drp/internal/core"
	"drp/internal/gra"
	"drp/internal/parallel"
	"drp/internal/workload"
)

// Policy names for Figure 4, parameterised by the configured budgets so the
// labels stay honest when the campaign is scaled down.
func (cfg Config) policyNames() []string {
	return []string{
		"Current",
		"Current+AGRA",
		"AGRA+5GRA",
		"AGRA+10GRA",
		fmt.Sprintf("Current+%dGRA", cfg.MedGens),
		fmt.Sprintf("Current+%dGRA", cfg.LongGens),
		fmt.Sprintf("%dGRA", cfg.LongGens),
	}
}

// AdaptSweep holds Figure 4 measurements: per x point and policy, the mean
// % NTC savings under the new patterns and the mean policy runtime.
type AdaptSweep struct {
	X        []float64
	Policies []string
	Savings  map[string][]float64
	TimeMS   map[string][]float64
}

// adaptCell is one Figure 4 sweep point: a pattern-change setting plus the
// progress line announcing it.
type adaptCell struct {
	tag                    uint64
	objectShare, readShare float64
	desc                   string
}

// adaptInstance evaluates all Section 6.3 policies on the net-th random
// network of a cell, returning one savings and one runtime value per
// policy. The seed is a pure function of (cell, net), so instances are
// independent and safe to run on any worker in any order.
func (cfg Config) adaptInstance(cell adaptCell, net int) (map[string]float64, map[string]float64, error) {
	polNames := cfg.policyNames()
	sav := make(map[string]float64, len(polNames))
	ms := make(map[string]float64, len(polNames))
	record := func(name string, savings, elapsedMS float64) {
		sav[name] = savings
		ms[name] = elapsedMS
	}

	seed := cfg.pointSeed(cell.tag, math.Float64bits(cell.objectShare), math.Float64bits(cell.readShare), uint64(net))
	old, err := workload.Generate(workload.NewSpec(cfg.AdaptSites, cfg.AdaptObjects, cfg.BaseUpdateRatio, cfg.BaseCapacityRatio), seed)
	if err != nil {
		return nil, nil, err
	}
	// The network's current scheme comes from a static GRA run on the
	// old (night-time) patterns; its population is retained, as the
	// paper's monitor site would.
	staticRes, err := gra.RunWith(old, cfg.graParams(seed+1), cfg.cellRun())
	if err != nil {
		return nil, nil, err
	}
	newP, changes, err := workload.ApplyChange(old, workload.ChangeSpec{
		Ch:          cfg.Ch,
		ObjectShare: cell.objectShare,
		ReadShare:   cell.readShare,
	}, seed+2)
	if err != nil {
		return nil, nil, err
	}
	changed := make([]int, len(changes))
	for i, c := range changes {
		changed[i] = c.Object
	}
	current, err := core.SchemeFromBits(newP, staticRes.Scheme.Bits())
	if err != nil {
		return nil, nil, err
	}

	// Policy: Current — the stale static scheme evaluated against the
	// new patterns.
	record(polNames[0], newP.Savings(current.Cost()), 0)

	// Policies: Current+AGRA, AGRA+5GRA, AGRA+10GRA.
	for i, miniGens := range []int{0, 5, 10} {
		mini := cfg.graParams(seed + 3 + uint64(i))
		res, err := agra.AdaptWith(agra.Input{
			Problem:       newP,
			Current:       current,
			GRAPopulation: staticRes.Population,
			Changed:       changed,
		}, cfg.agraParams(seed+7+uint64(i)), mini, miniGens, cfg.cellRun())
		if err != nil {
			return nil, nil, err
		}
		record(polNames[1+i], res.Savings, float64(res.Elapsed.Microseconds())/1000)
	}

	// Policies: Current+MedGRA and Current+LongGRA — re-run the static
	// GRA from the retained population under the new patterns.
	seedPop := append([]*bitset.Set{current.Bits()}, staticRes.Population...)
	for i, gens := range []int{cfg.MedGens, cfg.LongGens} {
		params := cfg.graParams(seed + 11 + uint64(i))
		params.Generations = gens
		res, err := gra.ContinueWith(newP, params, seedPop, cfg.cellRun())
		if err != nil {
			return nil, nil, err
		}
		record(polNames[4+i], res.Scheme.Savings(), float64(res.Elapsed.Microseconds())/1000)
	}

	// Policy: LongGRA from scratch (fresh SRA-seeded population).
	params := cfg.graParams(seed + 13)
	params.Generations = cfg.LongGens
	res, err := gra.RunWith(newP, params, cfg.cellRun())
	if err != nil {
		return nil, nil, err
	}
	record(polNames[6], res.Scheme.Savings(), float64(res.Elapsed.Microseconds())/1000)

	return sav, ms, nil
}

// runAdaptCells fans the cells × cfg.Networks instances out across the
// campaign worker pool and reduces each cell's per-policy means in input
// order.
func (cfg Config) runAdaptCells(cells []adaptCell, log logf) ([]map[string]float64, []map[string]float64, error) {
	log = syncLogf(log)
	nets := cfg.Networks
	type sample struct{ sav, ms map[string]float64 }
	samples := make([]sample, len(cells)*nets)
	errs := make([]error, len(samples))
	parallel.For(len(samples), parallel.Workers(cfg.Parallelism), func(ti int) {
		ci, net := ti/nets, ti%nets
		if net == 0 {
			log("%s", cells[ci].desc)
		}
		samples[ti].sav, samples[ti].ms, errs[ti] = cfg.adaptInstance(cells[ci], net)
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	polNames := cfg.policyNames()
	sav := make([]map[string]float64, len(cells))
	ms := make([]map[string]float64, len(cells))
	acc := make([]float64, nets)
	for ci := range cells {
		sav[ci] = make(map[string]float64, len(polNames))
		ms[ci] = make(map[string]float64, len(polNames))
		for _, name := range polNames {
			for net := 0; net < nets; net++ {
				acc[net] = samples[ci*nets+net].sav[name]
			}
			sav[ci][name] = mean(acc)
			for net := 0; net < nets; net++ {
				acc[net] = samples[ci*nets+net].ms[name]
			}
			ms[ci][name] = mean(acc)
		}
	}
	return sav, ms, nil
}

// runAdaptSweep produces Figures 4(a)/4(b)/4(d): the object-share sweep at
// a fixed read share (1.0 → reads increase; 0.0 → updates increase).
func (cfg Config) runAdaptSweep(tag uint64, readShare float64, what string, log logf) (*AdaptSweep, error) {
	sweep := &AdaptSweep{
		Policies: cfg.policyNames(),
		Savings:  make(map[string][]float64),
		TimeMS:   make(map[string][]float64),
	}
	var cells []adaptCell
	for xi, oc := range cfg.OChSweep {
		sweep.X = append(sweep.X, 100*oc)
		cells = append(cells, adaptCell{
			tag: tag, objectShare: oc, readShare: readShare,
			desc: fmt.Sprintf("fig4 (%s): OCh=%.0f%% (%d/%d)", what, 100*oc, xi+1, len(cfg.OChSweep)),
		})
	}
	sav, ms, err := cfg.runAdaptCells(cells, log)
	if err != nil {
		return nil, err
	}
	for ci := range cells {
		for _, name := range sweep.Policies {
			sweep.Savings[name] = append(sweep.Savings[name], sav[ci][name])
			sweep.TimeMS[name] = append(sweep.TimeMS[name], ms[ci][name])
		}
	}
	return sweep, nil
}

// runMixSweep produces Figure 4(c): object share fixed, the read/update mix
// of the changes swept from all-updates to all-reads.
func (cfg Config) runMixSweep(log logf) (*AdaptSweep, error) {
	sweep := &AdaptSweep{
		Policies: cfg.policyNames(),
		Savings:  make(map[string][]float64),
		TimeMS:   make(map[string][]float64),
	}
	var cells []adaptCell
	for xi, mix := range cfg.MixSweep {
		sweep.X = append(sweep.X, 100*mix)
		cells = append(cells, adaptCell{
			tag: 0x4c0, objectShare: cfg.MixObjectShare, readShare: mix,
			desc: fmt.Sprintf("fig4c: read share=%.0f%% (%d/%d)", 100*mix, xi+1, len(cfg.MixSweep)),
		})
	}
	sav, ms, err := cfg.runAdaptCells(cells, log)
	if err != nil {
		return nil, err
	}
	for ci := range cells {
		for _, name := range sweep.Policies {
			sweep.Savings[name] = append(sweep.Savings[name], sav[ci][name])
			sweep.TimeMS[name] = append(sweep.TimeMS[name], ms[ci][name])
		}
	}
	return sweep, nil
}

func (s *AdaptSweep) figure(id, title, xLabel string, times bool) *FigureResult {
	yLabel := "% NTC savings"
	if times {
		yLabel = "execution time (ms)"
	}
	fig := &FigureResult{ID: id, Title: title, XLabel: xLabel, YLabel: yLabel, X: s.X}
	for _, name := range s.Policies {
		src := s.Savings[name]
		if times {
			if name == "Current" {
				continue // the stale scheme costs nothing to "compute"
			}
			src = s.TimeMS[name]
		}
		fig.Series = append(fig.Series, Series{Name: name, Y: src})
	}
	return fig
}
