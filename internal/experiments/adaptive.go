package experiments

import (
	"fmt"
	"math"

	"drp/internal/agra"
	"drp/internal/bitset"
	"drp/internal/core"
	"drp/internal/gra"
	"drp/internal/workload"
)

// Policy names for Figure 4, parameterised by the configured budgets so the
// labels stay honest when the campaign is scaled down.
func (cfg Config) policyNames() []string {
	return []string{
		"Current",
		"Current+AGRA",
		"AGRA+5GRA",
		"AGRA+10GRA",
		fmt.Sprintf("Current+%dGRA", cfg.MedGens),
		fmt.Sprintf("Current+%dGRA", cfg.LongGens),
		fmt.Sprintf("%dGRA", cfg.LongGens),
	}
}

// AdaptSweep holds Figure 4 measurements: per x point and policy, the mean
// % NTC savings under the new patterns and the mean policy runtime.
type AdaptSweep struct {
	X        []float64
	Policies []string
	Savings  map[string][]float64
	TimeMS   map[string][]float64
}

// runAdaptPoint evaluates all Section 6.3 policies for one pattern-change
// setting, averaged over cfg.Networks networks. Returns savings and
// runtimes keyed by policy name.
func (cfg Config) runAdaptPoint(tag uint64, objectShare, readShare float64) (map[string]float64, map[string]float64, error) {
	polNames := cfg.policyNames()
	savAcc := make(map[string][]float64, len(polNames))
	timeAcc := make(map[string][]float64, len(polNames))

	for net := 0; net < cfg.Networks; net++ {
		seed := cfg.pointSeed(tag, math.Float64bits(objectShare), math.Float64bits(readShare), uint64(net))
		old, err := workload.Generate(workload.NewSpec(cfg.AdaptSites, cfg.AdaptObjects, cfg.BaseUpdateRatio, cfg.BaseCapacityRatio), seed)
		if err != nil {
			return nil, nil, err
		}
		// The network's current scheme comes from a static GRA run on the
		// old (night-time) patterns; its population is retained, as the
		// paper's monitor site would.
		staticRes, err := gra.Run(old, cfg.graParams(seed+1))
		if err != nil {
			return nil, nil, err
		}
		newP, changes, err := workload.ApplyChange(old, workload.ChangeSpec{
			Ch:          cfg.Ch,
			ObjectShare: objectShare,
			ReadShare:   readShare,
		}, seed+2)
		if err != nil {
			return nil, nil, err
		}
		changed := make([]int, len(changes))
		for i, c := range changes {
			changed[i] = c.Object
		}
		current, err := core.SchemeFromBits(newP, staticRes.Scheme.Bits())
		if err != nil {
			return nil, nil, err
		}

		record := func(name string, savings, ms float64) {
			savAcc[name] = append(savAcc[name], savings)
			timeAcc[name] = append(timeAcc[name], ms)
		}

		// Policy: Current — the stale static scheme evaluated against the
		// new patterns.
		record(polNames[0], newP.Savings(current.Cost()), 0)

		// Policies: Current+AGRA, AGRA+5GRA, AGRA+10GRA.
		for i, miniGens := range []int{0, 5, 10} {
			mini := cfg.graParams(seed + 3 + uint64(i))
			res, err := agra.Adapt(agra.Input{
				Problem:       newP,
				Current:       current,
				GRAPopulation: staticRes.Population,
				Changed:       changed,
			}, cfg.agraParams(seed+7+uint64(i)), mini, miniGens)
			if err != nil {
				return nil, nil, err
			}
			record(polNames[1+i], res.Savings, float64(res.Elapsed.Microseconds())/1000)
		}

		// Policies: Current+MedGRA and Current+LongGRA — re-run the static
		// GRA from the retained population under the new patterns.
		seedPop := append([]*bitset.Set{current.Bits()}, staticRes.Population...)
		for i, gens := range []int{cfg.MedGens, cfg.LongGens} {
			params := cfg.graParams(seed + 11 + uint64(i))
			params.Generations = gens
			res, err := gra.RunWithPopulation(newP, params, seedPop)
			if err != nil {
				return nil, nil, err
			}
			record(polNames[4+i], res.Scheme.Savings(), float64(res.Elapsed.Microseconds())/1000)
		}

		// Policy: LongGRA from scratch (fresh SRA-seeded population).
		params := cfg.graParams(seed + 13)
		params.Generations = cfg.LongGens
		res, err := gra.Run(newP, params)
		if err != nil {
			return nil, nil, err
		}
		record(polNames[6], res.Scheme.Savings(), float64(res.Elapsed.Microseconds())/1000)
	}

	sav := make(map[string]float64, len(polNames))
	ms := make(map[string]float64, len(polNames))
	for _, name := range polNames {
		sav[name] = mean(savAcc[name])
		ms[name] = mean(timeAcc[name])
	}
	return sav, ms, nil
}

// runAdaptSweep produces Figures 4(a)/4(b)/4(d): the object-share sweep at
// a fixed read share (1.0 → reads increase; 0.0 → updates increase).
func (cfg Config) runAdaptSweep(tag uint64, readShare float64, what string, log logf) (*AdaptSweep, error) {
	sweep := &AdaptSweep{
		Policies: cfg.policyNames(),
		Savings:  make(map[string][]float64),
		TimeMS:   make(map[string][]float64),
	}
	for xi, oc := range cfg.OChSweep {
		log("fig4 (%s): OCh=%.0f%% (%d/%d)", what, 100*oc, xi+1, len(cfg.OChSweep))
		sweep.X = append(sweep.X, 100*oc)
		sav, ms, err := cfg.runAdaptPoint(tag, oc, readShare)
		if err != nil {
			return nil, err
		}
		for _, name := range sweep.Policies {
			sweep.Savings[name] = append(sweep.Savings[name], sav[name])
			sweep.TimeMS[name] = append(sweep.TimeMS[name], ms[name])
		}
	}
	return sweep, nil
}

// runMixSweep produces Figure 4(c): object share fixed, the read/update mix
// of the changes swept from all-updates to all-reads.
func (cfg Config) runMixSweep(log logf) (*AdaptSweep, error) {
	sweep := &AdaptSweep{
		Policies: cfg.policyNames(),
		Savings:  make(map[string][]float64),
		TimeMS:   make(map[string][]float64),
	}
	for xi, mix := range cfg.MixSweep {
		log("fig4c: read share=%.0f%% (%d/%d)", 100*mix, xi+1, len(cfg.MixSweep))
		sweep.X = append(sweep.X, 100*mix)
		sav, ms, err := cfg.runAdaptPoint(0x4c0, cfg.MixObjectShare, mix)
		if err != nil {
			return nil, err
		}
		for _, name := range sweep.Policies {
			sweep.Savings[name] = append(sweep.Savings[name], sav[name])
			sweep.TimeMS[name] = append(sweep.TimeMS[name], ms[name])
		}
	}
	return sweep, nil
}

func (s *AdaptSweep) figure(id, title, xLabel string, times bool) *FigureResult {
	yLabel := "% NTC savings"
	if times {
		yLabel = "execution time (ms)"
	}
	fig := &FigureResult{ID: id, Title: title, XLabel: xLabel, YLabel: yLabel, X: s.X}
	for _, name := range s.Policies {
		src := s.Savings[name]
		if times {
			if name == "Current" {
				continue // the stale scheme costs nothing to "compute"
			}
			src = s.TimeMS[name]
		}
		fig.Series = append(fig.Series, Series{Name: name, Y: src})
	}
	return fig
}
