package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// parCfg is a Tiny campaign with enough networks to exercise the cell
// fan-out (Tiny uses 1 network, which leaves most workers idle).
func parCfg(par int) Config {
	cfg := Tiny()
	cfg.Networks = 2
	cfg.Parallelism = par
	return cfg
}

// TestUpdateSweepParallelBitIdentical pins the campaign determinism
// guarantee on a static sweep: savings, deviations and replica counts are
// bit-identical at any worker count (timings are excluded — wall-clock is
// never deterministic).
func TestUpdateSweepParallelBitIdentical(t *testing.T) {
	ref, err := parCfg(1).runUpdateSweep(func(string, ...interface{}) {})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 8} {
		sweep, err := parCfg(par).runUpdateSweep(func(string, ...interface{}) {})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if len(sweep.Variants) != len(ref.Variants) {
			t.Fatalf("par=%d: %d variants, want %d", par, len(sweep.Variants), len(ref.Variants))
		}
		for vi, v := range sweep.Variants {
			rv := ref.Variants[vi]
			if v.Label != rv.Label {
				t.Fatalf("par=%d: variant %d label %q, want %q", par, vi, v.Label, rv.Label)
			}
			for xi := range v.Savings {
				if v.Savings[xi] != rv.Savings[xi] || v.SavingsStd[xi] != rv.SavingsStd[xi] || v.Replicas[xi] != rv.Replicas[xi] {
					t.Fatalf("par=%d: %s point %d diverged from serial", par, v.Label, xi)
				}
			}
		}
	}
}

// TestAdaptSweepParallelBitIdentical pins the same guarantee on the
// Figure 4 policy sweep.
func TestAdaptSweepParallelBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive sweep in -short mode")
	}
	nolog := func(string, ...interface{}) {}
	ref, err := parCfg(1).runAdaptSweep(0x4a0, 1.0, "reads up", nolog)
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := parCfg(4).runAdaptSweep(0x4a0, 1.0, "reads up", nolog)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range ref.Policies {
		for xi := range ref.Savings[name] {
			if sweep.Savings[name][xi] != ref.Savings[name][xi] {
				t.Fatalf("policy %s point %d diverged from serial", name, xi)
			}
		}
	}
}

// TestRunStaticCellsLogsEveryCell checks the worker-side progress lines:
// each cell announces itself exactly once through the serialised logger.
func TestRunStaticCellsLogsEveryCell(t *testing.T) {
	cfg := parCfg(4)
	var buf bytes.Buffer
	// The sink is deliberately not goroutine-safe: runStaticCells' own
	// serialisation is what keeps the race detector quiet here.
	log := func(format string, args ...interface{}) {
		fmt.Fprintf(&buf, format+"\n", args...)
	}
	if _, err := cfg.runCapacitySweep(log); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig3b: C=10%", "fig3b: C=30%"} {
		if strings.Count(out, want) != 1 {
			t.Fatalf("progress line %q appeared %d times in %q", want, strings.Count(out, want), out)
		}
	}
}

func TestConfigRejectsNegativeParallelism(t *testing.T) {
	cfg := Tiny()
	cfg.Parallelism = -1
	if err := cfg.validate(); err == nil {
		t.Fatal("negative parallelism accepted")
	}
}
