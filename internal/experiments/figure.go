package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one labelled curve of a figure.
type Series struct {
	Name string
	Y    []float64
}

// FigureResult is a reproduced figure: named series sharing an x-axis.
type FigureResult struct {
	ID     string // e.g. "1a"
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// Get returns the series with the given name, or nil.
func (f *FigureResult) Get(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// Render writes the figure as an aligned ASCII table.
func (f *FigureResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Figure %s: %s\n", f.ID, f.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  x-axis: %s   y-axis: %s\n", f.XLabel, f.YLabel); err != nil {
		return err
	}
	cols := make([]string, 0, len(f.Series)+1)
	cols = append(cols, f.XLabel)
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	widths := make([]int, len(cols))
	rows := make([][]string, len(f.X))
	for r := range f.X {
		row := make([]string, 0, len(cols))
		row = append(row, trimFloat(f.X[r]))
		for _, s := range f.Series {
			if r < len(s.Y) {
				row = append(row, trimFloat(s.Y[r]))
			} else {
				row = append(row, "-")
			}
		}
		rows[r] = row
	}
	for c, name := range cols {
		widths[c] = len(name)
		for _, row := range rows {
			if len(row[c]) > widths[c] {
				widths[c] = len(row[c])
			}
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for c, cell := range cells {
			parts[c] = fmt.Sprintf("%*s", widths[c], cell)
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
		return err
	}
	if err := writeRow(cols); err != nil {
		return err
	}
	for _, row := range rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the figure as CSV (x column, then one column per series).
func (f *FigureResult) RenderCSV(w io.Writer) error {
	header := make([]string, 0, len(f.Series)+1)
	header = append(header, csvEscape(f.XLabel))
	for _, s := range f.Series {
		header = append(header, csvEscape(s.Name))
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for r := range f.X {
		row := make([]string, 0, len(f.Series)+1)
		row = append(row, trimFloat(f.X[r]))
		for _, s := range f.Series {
			if r < len(s.Y) {
				row = append(row, trimFloat(s.Y[r]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// trimFloat prints a float compactly: integers lose the decimal point,
// everything else keeps three significant decimals.
func trimFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
}

// stddev returns the population standard deviation of xs (0 for fewer
// than two samples).
func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	var ss float64
	for _, x := range xs {
		ss += (x - m) * (x - m)
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// mean returns the arithmetic mean of xs (0 for an empty slice).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}
