package experiments

import (
	"fmt"
	"math"

	"drp/internal/gra"
	"drp/internal/sra"
	"drp/internal/workload"
)

// Variant is one algorithm/parameter combination tracked through a sweep.
type Variant struct {
	Label      string
	Savings    []float64 // % NTC saved, mean over networks, per x point
	SavingsStd []float64 // standard deviation of the savings across networks
	Replicas   []float64 // replicas created beyond primaries
	TimeMS     []float64 // execution time in milliseconds
}

// StaticSweep holds the measurements behind Figures 1–3: for each x-axis
// point, the per-variant mean savings, replica counts and runtimes.
type StaticSweep struct {
	X        []float64
	Variants []*Variant
}

func (s *StaticSweep) variant(label string) *Variant {
	for _, v := range s.Variants {
		if v.Label == label {
			return v
		}
	}
	v := &Variant{Label: label}
	s.Variants = append(s.Variants, v)
	return v
}

// staticPoint runs SRA and GRA on cfg.Networks random instances of the
// given shape and returns the mean savings, replica counts, runtimes and
// savings standard deviations:
// (sraSav, graSav, sraRepl, graRepl, sraMS, graMS, sraSavStd, graSavStd).
func (cfg Config) staticPoint(tag uint64, m, n int, u, c float64) ([8]float64, error) {
	var acc [6][]float64
	for net := 0; net < cfg.Networks; net++ {
		seed := cfg.pointSeed(tag, uint64(m), uint64(n), math.Float64bits(u), math.Float64bits(c), uint64(net))
		p, err := workload.Generate(workload.NewSpec(m, n, u, c), seed)
		if err != nil {
			return [8]float64{}, fmt.Errorf("experiments: generate M=%d N=%d: %w", m, n, err)
		}
		sraRes := sra.Run(p, sra.Options{})
		graRes, err := gra.Run(p, cfg.graParams(seed+1))
		if err != nil {
			return [8]float64{}, fmt.Errorf("experiments: gra M=%d N=%d: %w", m, n, err)
		}
		acc[0] = append(acc[0], p.Savings(sraRes.Scheme.Cost()))
		acc[1] = append(acc[1], graRes.Scheme.Savings())
		acc[2] = append(acc[2], float64(sraRes.Scheme.TotalReplicas()))
		acc[3] = append(acc[3], float64(graRes.Scheme.TotalReplicas()))
		acc[4] = append(acc[4], float64(sraRes.Elapsed.Microseconds())/1000)
		acc[5] = append(acc[5], float64(graRes.Elapsed.Microseconds())/1000)
	}
	var out [8]float64
	for i := range acc {
		out[i] = mean(acc[i])
	}
	out[6] = stddev(acc[0])
	out[7] = stddev(acc[1])
	return out, nil
}

// runSitesSweep produces the data behind Figures 1(a), 1(b), 2(a), 2(b):
// object count fixed at Fig1Objects, sites swept, one SRA and one GRA
// variant per update ratio.
func (cfg Config) runSitesSweep(log logf) (*StaticSweep, error) {
	sweep := &StaticSweep{}
	for _, m := range cfg.SitesSweep {
		sweep.X = append(sweep.X, float64(m))
	}
	for _, u := range cfg.UpdateRatios {
		for xi, m := range cfg.SitesSweep {
			log("fig1/2: sites=%d U=%.0f%% (%d/%d)", m, 100*u, xi+1, len(cfg.SitesSweep))
			vals, err := cfg.staticPoint(0x516, m, cfg.Fig1Objects, u, cfg.BaseCapacityRatio)
			if err != nil {
				return nil, err
			}
			cfg.appendPoint(sweep, u, vals)
		}
	}
	return sweep, nil
}

// runObjectsSweep produces the data behind Figures 1(c) and 1(d): sites
// fixed at Fig1cSites, objects swept.
func (cfg Config) runObjectsSweep(log logf) (*StaticSweep, error) {
	sweep := &StaticSweep{}
	for _, n := range cfg.ObjectsSweep {
		sweep.X = append(sweep.X, float64(n))
	}
	for _, u := range cfg.UpdateRatios {
		for xi, n := range cfg.ObjectsSweep {
			log("fig1c/d: objects=%d U=%.0f%% (%d/%d)", n, 100*u, xi+1, len(cfg.ObjectsSweep))
			vals, err := cfg.staticPoint(0x0b7, cfg.Fig1cSites, n, u, cfg.BaseCapacityRatio)
			if err != nil {
				return nil, err
			}
			cfg.appendPoint(sweep, u, vals)
		}
	}
	return sweep, nil
}

func (cfg Config) appendPoint(sweep *StaticSweep, u float64, vals [8]float64) {
	uLabel := fmt.Sprintf("U=%s%%", trimFloat(100*u))
	appendVals(sweep.variant("SRA "+uLabel), sweep.variant("GRA "+uLabel), vals)
}

// appendVals pushes one staticPoint result onto the SRA/GRA variant pair.
func appendVals(sraV, graV *Variant, vals [8]float64) {
	sraV.Savings = append(sraV.Savings, vals[0])
	graV.Savings = append(graV.Savings, vals[1])
	sraV.Replicas = append(sraV.Replicas, vals[2])
	graV.Replicas = append(graV.Replicas, vals[3])
	sraV.TimeMS = append(sraV.TimeMS, vals[4])
	graV.TimeMS = append(graV.TimeMS, vals[5])
	sraV.SavingsStd = append(sraV.SavingsStd, vals[6])
	graV.SavingsStd = append(graV.SavingsStd, vals[7])
}

// runUpdateSweep produces Figure 3(a): savings versus update ratio at the
// adaptive test-case shape.
func (cfg Config) runUpdateSweep(log logf) (*StaticSweep, error) {
	sweep := &StaticSweep{}
	sraV := sweep.variant("SRA")
	graV := sweep.variant("GRA")
	for xi, u := range cfg.UpdateSweep {
		log("fig3a: U=%.1f%% (%d/%d)", 100*u, xi+1, len(cfg.UpdateSweep))
		sweep.X = append(sweep.X, 100*u)
		vals, err := cfg.staticPoint(0x3a0, cfg.Fig3Sites, cfg.Fig3Objects, u, cfg.BaseCapacityRatio)
		if err != nil {
			return nil, err
		}
		appendVals(sraV, graV, vals)
	}
	return sweep, nil
}

// runCapacitySweep produces Figure 3(b): savings versus capacity ratio at
// the base update ratio (paper: U=5%).
func (cfg Config) runCapacitySweep(log logf) (*StaticSweep, error) {
	sweep := &StaticSweep{}
	sraV := sweep.variant("SRA")
	graV := sweep.variant("GRA")
	for xi, c := range cfg.CapacitySweep {
		log("fig3b: C=%.0f%% (%d/%d)", 100*c, xi+1, len(cfg.CapacitySweep))
		sweep.X = append(sweep.X, 100*c)
		vals, err := cfg.staticPoint(0x3b0, cfg.Fig3Sites, cfg.Fig3Objects, cfg.BaseUpdateRatio, c)
		if err != nil {
			return nil, err
		}
		appendVals(sraV, graV, vals)
	}
	return sweep, nil
}

// figureFrom projects one measurement (savings, replicas, or runtime of a
// label subset) of a sweep into a FigureResult.
func figureFrom(sweep *StaticSweep, id, title, xLabel, yLabel string, pick func(Variant) ([]float64, bool)) *FigureResult {
	fig := &FigureResult{ID: id, Title: title, XLabel: xLabel, YLabel: yLabel, X: sweep.X}
	for _, v := range sweep.Variants {
		if ys, ok := pick(*v); ok {
			fig.Series = append(fig.Series, Series{Name: v.Label, Y: ys})
		}
	}
	return fig
}
