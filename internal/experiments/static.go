package experiments

import (
	"fmt"
	"math"

	"drp/internal/gra"
	"drp/internal/parallel"
	"drp/internal/sra"
	"drp/internal/workload"
)

// Variant is one algorithm/parameter combination tracked through a sweep.
type Variant struct {
	Label      string
	Savings    []float64 // % NTC saved, mean over networks, per x point
	SavingsStd []float64 // standard deviation of the savings across networks
	Replicas   []float64 // replicas created beyond primaries
	TimeMS     []float64 // execution time in milliseconds
}

// StaticSweep holds the measurements behind Figures 1–3: for each x-axis
// point, the per-variant mean savings, replica counts and runtimes.
type StaticSweep struct {
	X        []float64
	Variants []*Variant
}

func (s *StaticSweep) variant(label string) *Variant {
	for _, v := range s.Variants {
		if v.Label == label {
			return v
		}
	}
	v := &Variant{Label: label}
	s.Variants = append(s.Variants, v)
	return v
}

// staticCell is one sweep point: a problem shape plus the progress line
// announcing it.
type staticCell struct {
	tag  uint64
	m, n int
	u, c float64
	desc string
}

// staticInstance runs SRA and GRA on the net-th random network of a cell
// and returns the raw sample
// (sraSav, graSav, sraRepl, graRepl, sraMS, graMS).
// The seed is a pure function of (cell, net), so instances are independent
// and safe to run on any worker in any order.
func (cfg Config) staticInstance(cell staticCell, net int) ([6]float64, error) {
	seed := cfg.pointSeed(cell.tag, uint64(cell.m), uint64(cell.n), math.Float64bits(cell.u), math.Float64bits(cell.c), uint64(net))
	p, err := workload.Generate(workload.NewSpec(cell.m, cell.n, cell.u, cell.c), seed)
	if err != nil {
		return [6]float64{}, fmt.Errorf("experiments: generate M=%d N=%d: %w", cell.m, cell.n, err)
	}
	sraRes := sra.Run(p, sra.Options{})
	graRes, err := gra.RunWith(p, cfg.graParams(seed+1), cfg.cellRun())
	if err != nil {
		return [6]float64{}, fmt.Errorf("experiments: gra M=%d N=%d: %w", cell.m, cell.n, err)
	}
	return [6]float64{
		p.Savings(sraRes.Scheme.Cost()),
		graRes.Scheme.Savings(),
		float64(sraRes.Scheme.TotalReplicas()),
		float64(graRes.Scheme.TotalReplicas()),
		float64(sraRes.Elapsed.Microseconds()) / 1000,
		float64(graRes.Elapsed.Microseconds()) / 1000,
	}, nil
}

// runStaticCells fans the cells × cfg.Networks instances out across the
// campaign worker pool and reduces each cell's statistics in input order:
// (sraSav, graSav, sraRepl, graRepl, sraMS, graMS, sraSavStd, graSavStd).
func (cfg Config) runStaticCells(cells []staticCell, log logf) ([][8]float64, error) {
	log = syncLogf(log)
	nets := cfg.Networks
	samples := make([][6]float64, len(cells)*nets)
	errs := make([]error, len(samples))
	parallel.For(len(samples), parallel.Workers(cfg.Parallelism), func(ti int) {
		ci, net := ti/nets, ti%nets
		if net == 0 {
			log("%s", cells[ci].desc)
		}
		samples[ti], errs[ti] = cfg.staticInstance(cells[ci], net)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([][8]float64, len(cells))
	acc := make([]float64, nets)
	for ci := range cells {
		for col := 0; col < 6; col++ {
			for net := 0; net < nets; net++ {
				acc[net] = samples[ci*nets+net][col]
			}
			out[ci][col] = mean(acc)
			if col < 2 {
				out[ci][6+col] = stddev(acc)
			}
		}
	}
	return out, nil
}

// runSitesSweep produces the data behind Figures 1(a), 1(b), 2(a), 2(b):
// object count fixed at Fig1Objects, sites swept, one SRA and one GRA
// variant per update ratio.
func (cfg Config) runSitesSweep(log logf) (*StaticSweep, error) {
	sweep := &StaticSweep{}
	for _, m := range cfg.SitesSweep {
		sweep.X = append(sweep.X, float64(m))
	}
	var cells []staticCell
	for _, u := range cfg.UpdateRatios {
		for xi, m := range cfg.SitesSweep {
			cells = append(cells, staticCell{
				tag: 0x516, m: m, n: cfg.Fig1Objects, u: u, c: cfg.BaseCapacityRatio,
				desc: fmt.Sprintf("fig1/2: sites=%d U=%.0f%% (%d/%d)", m, 100*u, xi+1, len(cfg.SitesSweep)),
			})
		}
	}
	vals, err := cfg.runStaticCells(cells, log)
	if err != nil {
		return nil, err
	}
	ci := 0
	for _, u := range cfg.UpdateRatios {
		for range cfg.SitesSweep {
			cfg.appendPoint(sweep, u, vals[ci])
			ci++
		}
	}
	return sweep, nil
}

// runObjectsSweep produces the data behind Figures 1(c) and 1(d): sites
// fixed at Fig1cSites, objects swept.
func (cfg Config) runObjectsSweep(log logf) (*StaticSweep, error) {
	sweep := &StaticSweep{}
	for _, n := range cfg.ObjectsSweep {
		sweep.X = append(sweep.X, float64(n))
	}
	var cells []staticCell
	for _, u := range cfg.UpdateRatios {
		for xi, n := range cfg.ObjectsSweep {
			cells = append(cells, staticCell{
				tag: 0x0b7, m: cfg.Fig1cSites, n: n, u: u, c: cfg.BaseCapacityRatio,
				desc: fmt.Sprintf("fig1c/d: objects=%d U=%.0f%% (%d/%d)", n, 100*u, xi+1, len(cfg.ObjectsSweep)),
			})
		}
	}
	vals, err := cfg.runStaticCells(cells, log)
	if err != nil {
		return nil, err
	}
	ci := 0
	for _, u := range cfg.UpdateRatios {
		for range cfg.ObjectsSweep {
			cfg.appendPoint(sweep, u, vals[ci])
			ci++
		}
	}
	return sweep, nil
}

func (cfg Config) appendPoint(sweep *StaticSweep, u float64, vals [8]float64) {
	uLabel := fmt.Sprintf("U=%s%%", trimFloat(100*u))
	appendVals(sweep.variant("SRA "+uLabel), sweep.variant("GRA "+uLabel), vals)
}

// appendVals pushes one staticPoint result onto the SRA/GRA variant pair.
func appendVals(sraV, graV *Variant, vals [8]float64) {
	sraV.Savings = append(sraV.Savings, vals[0])
	graV.Savings = append(graV.Savings, vals[1])
	sraV.Replicas = append(sraV.Replicas, vals[2])
	graV.Replicas = append(graV.Replicas, vals[3])
	sraV.TimeMS = append(sraV.TimeMS, vals[4])
	graV.TimeMS = append(graV.TimeMS, vals[5])
	sraV.SavingsStd = append(sraV.SavingsStd, vals[6])
	graV.SavingsStd = append(graV.SavingsStd, vals[7])
}

// runUpdateSweep produces Figure 3(a): savings versus update ratio at the
// adaptive test-case shape.
func (cfg Config) runUpdateSweep(log logf) (*StaticSweep, error) {
	sweep := &StaticSweep{}
	sraV := sweep.variant("SRA")
	graV := sweep.variant("GRA")
	var cells []staticCell
	for xi, u := range cfg.UpdateSweep {
		sweep.X = append(sweep.X, 100*u)
		cells = append(cells, staticCell{
			tag: 0x3a0, m: cfg.Fig3Sites, n: cfg.Fig3Objects, u: u, c: cfg.BaseCapacityRatio,
			desc: fmt.Sprintf("fig3a: U=%.1f%% (%d/%d)", 100*u, xi+1, len(cfg.UpdateSweep)),
		})
	}
	vals, err := cfg.runStaticCells(cells, log)
	if err != nil {
		return nil, err
	}
	for _, v := range vals {
		appendVals(sraV, graV, v)
	}
	return sweep, nil
}

// runCapacitySweep produces Figure 3(b): savings versus capacity ratio at
// the base update ratio (paper: U=5%).
func (cfg Config) runCapacitySweep(log logf) (*StaticSweep, error) {
	sweep := &StaticSweep{}
	sraV := sweep.variant("SRA")
	graV := sweep.variant("GRA")
	var cells []staticCell
	for xi, c := range cfg.CapacitySweep {
		sweep.X = append(sweep.X, 100*c)
		cells = append(cells, staticCell{
			tag: 0x3b0, m: cfg.Fig3Sites, n: cfg.Fig3Objects, u: cfg.BaseUpdateRatio, c: c,
			desc: fmt.Sprintf("fig3b: C=%.0f%% (%d/%d)", 100*c, xi+1, len(cfg.CapacitySweep)),
		})
	}
	vals, err := cfg.runStaticCells(cells, log)
	if err != nil {
		return nil, err
	}
	for _, v := range vals {
		appendVals(sraV, graV, v)
	}
	return sweep, nil
}

// figureFrom projects one measurement (savings, replicas, or runtime of a
// label subset) of a sweep into a FigureResult.
func figureFrom(sweep *StaticSweep, id, title, xLabel, yLabel string, pick func(Variant) ([]float64, bool)) *FigureResult {
	fig := &FigureResult{ID: id, Title: title, XLabel: xLabel, YLabel: yLabel, X: sweep.X}
	for _, v := range sweep.Variants {
		if ys, ok := pick(*v); ok {
			fig.Series = append(fig.Series, Series{Name: v.Label, Y: ys})
		}
	}
	return fig
}
