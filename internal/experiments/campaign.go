package experiments

import (
	"fmt"
	"sort"
	"sync"
)

// logf receives progress messages; campaigns are long-running.
type logf func(format string, args ...interface{})

// syncLogf serialises a logf so sweep workers can emit progress lines
// concurrently; the sink (os.Stderr, a test buffer) need not be
// goroutine-safe.
func syncLogf(log logf) logf {
	var mu sync.Mutex
	return func(format string, args ...interface{}) {
		mu.Lock()
		defer mu.Unlock()
		log(format, args...)
	}
}

// FigureIDs lists every figure of the paper's evaluation section that the
// harness reproduces, in paper order.
var FigureIDs = []string{"1a", "1b", "1c", "1d", "2a", "2b", "3a", "3b", "4a", "4b", "4c", "4d"}

// Campaign lazily runs the sweeps behind the paper's figures, caching each
// sweep so figure groups (1a/1b/2a/2b all come from one sweep) are computed
// once.
type Campaign struct {
	cfg Config
	log logf

	sites     *StaticSweep
	objects   *StaticSweep
	updates   *StaticSweep
	capacity  *StaticSweep
	adaptRead *AdaptSweep
	adaptWr   *AdaptSweep
	adaptMix  *AdaptSweep
}

// NewCampaign validates cfg and returns a campaign. logFn may be nil.
func NewCampaign(cfg Config, logFn func(format string, args ...interface{})) (*Campaign, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if logFn == nil {
		logFn = func(string, ...interface{}) {}
	}
	return &Campaign{cfg: cfg, log: logFn}, nil
}

func (c *Campaign) sitesSweep() (*StaticSweep, error) {
	if c.sites == nil {
		s, err := c.cfg.runSitesSweep(c.log)
		if err != nil {
			return nil, err
		}
		c.sites = s
	}
	return c.sites, nil
}

func (c *Campaign) objectsSweep() (*StaticSweep, error) {
	if c.objects == nil {
		s, err := c.cfg.runObjectsSweep(c.log)
		if err != nil {
			return nil, err
		}
		c.objects = s
	}
	return c.objects, nil
}

func (c *Campaign) updatesSweep() (*StaticSweep, error) {
	if c.updates == nil {
		s, err := c.cfg.runUpdateSweep(c.log)
		if err != nil {
			return nil, err
		}
		c.updates = s
	}
	return c.updates, nil
}

func (c *Campaign) capacitySweep() (*StaticSweep, error) {
	if c.capacity == nil {
		s, err := c.cfg.runCapacitySweep(c.log)
		if err != nil {
			return nil, err
		}
		c.capacity = s
	}
	return c.capacity, nil
}

func (c *Campaign) adaptReadSweep() (*AdaptSweep, error) {
	if c.adaptRead == nil {
		s, err := c.cfg.runAdaptSweep(0x4a0, 1.0, "reads up", c.log)
		if err != nil {
			return nil, err
		}
		c.adaptRead = s
	}
	return c.adaptRead, nil
}

func (c *Campaign) adaptWriteSweep() (*AdaptSweep, error) {
	if c.adaptWr == nil {
		s, err := c.cfg.runAdaptSweep(0x4b0, 0.0, "updates up", c.log)
		if err != nil {
			return nil, err
		}
		c.adaptWr = s
	}
	return c.adaptWr, nil
}

func (c *Campaign) adaptMixSweep() (*AdaptSweep, error) {
	if c.adaptMix == nil {
		s, err := c.cfg.runMixSweep(c.log)
		if err != nil {
			return nil, err
		}
		c.adaptMix = s
	}
	return c.adaptMix, nil
}

// Figure reproduces one figure by ID (see FigureIDs).
func (c *Campaign) Figure(id string) (*FigureResult, error) {
	pickSavings := func(v Variant) ([]float64, bool) { return v.Savings, true }
	pickReplicas := func(v Variant) ([]float64, bool) { return v.Replicas, true }
	pickTimePrefix := func(prefix string) func(Variant) ([]float64, bool) {
		return func(v Variant) ([]float64, bool) {
			if len(v.Label) >= len(prefix) && v.Label[:len(prefix)] == prefix {
				return v.TimeMS, true
			}
			return nil, false
		}
	}
	switch id {
	case "1a":
		s, err := c.sitesSweep()
		if err != nil {
			return nil, err
		}
		return figureFrom(s, "1a", "Savings in network cost versus the number of sites", "sites", "% NTC savings", pickSavings), nil
	case "1b":
		s, err := c.sitesSweep()
		if err != nil {
			return nil, err
		}
		return figureFrom(s, "1b", "Number of replicas generated versus the number of sites", "sites", "replicas", pickReplicas), nil
	case "1c":
		s, err := c.objectsSweep()
		if err != nil {
			return nil, err
		}
		return figureFrom(s, "1c", "Savings in network cost versus the number of objects", "objects", "% NTC savings", pickSavings), nil
	case "1d":
		s, err := c.objectsSweep()
		if err != nil {
			return nil, err
		}
		return figureFrom(s, "1d", "Number of replicas generated versus the number of objects", "objects", "replicas", pickReplicas), nil
	case "2a":
		s, err := c.sitesSweep()
		if err != nil {
			return nil, err
		}
		return figureFrom(s, "2a", "Execution time of SRA versus the number of sites", "sites", "time (ms)", pickTimePrefix("SRA")), nil
	case "2b":
		s, err := c.sitesSweep()
		if err != nil {
			return nil, err
		}
		return figureFrom(s, "2b", "Execution time of GRA versus the number of sites", "sites", "time (ms)", pickTimePrefix("GRA")), nil
	case "3a":
		s, err := c.updatesSweep()
		if err != nil {
			return nil, err
		}
		return figureFrom(s, "3a", "Savings in network cost versus the update ratio", "update ratio %", "% NTC savings", pickSavings), nil
	case "3b":
		s, err := c.capacitySweep()
		if err != nil {
			return nil, err
		}
		return figureFrom(s, "3b", "Savings in network cost versus the capacity of sites", "capacity %", "% NTC savings", pickSavings), nil
	case "4a":
		s, err := c.adaptReadSweep()
		if err != nil {
			return nil, err
		}
		return s.figure("4a", "Savings versus the share of objects with reads increased", "% objects changed", false), nil
	case "4b":
		s, err := c.adaptWriteSweep()
		if err != nil {
			return nil, err
		}
		return s.figure("4b", "Savings versus the share of objects with updates increased", "% objects changed", false), nil
	case "4c":
		s, err := c.adaptMixSweep()
		if err != nil {
			return nil, err
		}
		return s.figure("4c", "Savings versus the kind of pattern change (read share of changes)", "% of changes toward reads", false), nil
	case "4d":
		s, err := c.adaptReadSweep()
		if err != nil {
			return nil, err
		}
		return s.figure("4d", "Execution time of the adaptation policies", "% objects changed", true), nil
	default:
		return nil, fmt.Errorf("experiments: unknown figure %q (want one of %v)", id, FigureIDs)
	}
}

// All reproduces every figure, sharing sweeps between related figures.
func (c *Campaign) All() ([]*FigureResult, error) {
	out := make([]*FigureResult, 0, len(FigureIDs))
	for _, id := range FigureIDs {
		fig, err := c.Figure(id)
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}

// ValidFigure reports whether id names a reproduced figure.
func ValidFigure(id string) bool {
	i := sort.SearchStrings(sortedIDs, id)
	return i < len(sortedIDs) && sortedIDs[i] == id
}

var sortedIDs = func() []string {
	ids := append([]string(nil), FigureIDs...)
	sort.Strings(ids)
	return ids
}()
