package experiments

import (
	"fmt"
	"io"
	"time"

	"drp/internal/baseline"
	"drp/internal/gra"
	"drp/internal/sra"
	"drp/internal/workload"
)

// SummaryRow is one algorithm's performance on the headline test case.
type SummaryRow struct {
	Algorithm string
	Savings   float64
	Replicas  int
	Elapsed   time.Duration
}

// SummaryResult compares every implemented algorithm on the paper's
// adaptive test-case shape (M=50, N=200, U=5%, C=15% at paper scale).
type SummaryResult struct {
	Sites, Objects int
	Rows           []SummaryRow
}

// RunSummary builds the headline comparison table on one generated
// instance: baselines, greedy, local search and the genetic algorithm.
func RunSummary(cfg Config, log func(format string, args ...interface{})) (*SummaryResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if log == nil {
		log = func(string, ...interface{}) {}
	}
	p, err := workload.Generate(workload.NewSpec(cfg.AdaptSites, cfg.AdaptObjects, cfg.BaseUpdateRatio, cfg.BaseCapacityRatio), cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &SummaryResult{Sites: p.Sites(), Objects: p.Objects()}
	add := func(name string, savings float64, replicas int, elapsed time.Duration) {
		res.Rows = append(res.Rows, SummaryRow{Algorithm: name, Savings: savings, Replicas: replicas, Elapsed: elapsed})
	}

	log("summary: baselines")
	start := time.Now()
	none := baseline.NoReplication(p)
	add("no replication", none.Savings(), none.TotalReplicas(), time.Since(start))

	start = time.Now()
	rnd := baseline.Random(p, cfg.Seed)
	add("random fill", rnd.Savings(), rnd.TotalReplicas(), time.Since(start))

	start = time.Now()
	ro := baseline.ReadOnlyGreedy(p)
	add("read-blind greedy", ro.Savings(), ro.TotalReplicas(), time.Since(start))

	log("summary: SRA")
	sraRes := sra.Run(p, sra.Options{})
	add("SRA (paper)", sraRes.Scheme.Savings(), sraRes.Scheme.TotalReplicas(), sraRes.Elapsed)

	log("summary: hill climb")
	hc := baseline.HillClimbWith(p, nil, 0, cfg.cellRun())
	add("hill climb", hc.Scheme.Savings(), hc.Scheme.TotalReplicas(), hc.Stats.Elapsed)

	log("summary: GRA (%d gens)", cfg.GRAGens)
	// A single run, so the campaign's worker budget goes to the GA itself.
	params := cfg.graParams(cfg.Seed + 1)
	params.Parallelism = cfg.Parallelism
	graRes, err := gra.RunWith(p, params, cfg.cellRun())
	if err != nil {
		return nil, err
	}
	add(fmt.Sprintf("GRA (paper, %dx%d)", cfg.GRAPop, cfg.GRAGens), graRes.Scheme.Savings(), graRes.Scheme.TotalReplicas(), graRes.Elapsed)

	return res, nil
}

// Render writes the summary as an aligned table.
func (s *SummaryResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Algorithm comparison on M=%d, N=%d:\n", s.Sites, s.Objects); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-22s %10s %10s %14s\n", "algorithm", "savings%", "replicas", "time"); err != nil {
		return err
	}
	for _, row := range s.Rows {
		if _, err := fmt.Fprintf(w, "  %-22s %10.2f %10d %14v\n", row.Algorithm, row.Savings, row.Replicas, row.Elapsed.Round(time.Microsecond)); err != nil {
			return err
		}
	}
	return nil
}

// RunConvergence produces an extension figure the paper does not plot but
// whose data the GA run records anyway: best and mean population fitness
// per generation on the headline test case, for each update ratio.
func RunConvergence(cfg Config, log func(format string, args ...interface{})) (*FigureResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if log == nil {
		log = func(string, ...interface{}) {}
	}
	fig := &FigureResult{
		ID:     "conv",
		Title:  "GRA convergence: fitness versus generation",
		XLabel: "generation",
		YLabel: "fitness (D'−D)/D'",
	}
	for g := 0; g <= cfg.GRAGens; g++ {
		fig.X = append(fig.X, float64(g))
	}
	for _, u := range cfg.UpdateRatios {
		log("conv: U=%.0f%%", 100*u)
		p, err := workload.Generate(workload.NewSpec(cfg.AdaptSites, cfg.AdaptObjects, u, cfg.BaseCapacityRatio), cfg.Seed)
		if err != nil {
			return nil, err
		}
		params := cfg.graParams(cfg.Seed + 7)
		params.Parallelism = cfg.Parallelism
		res, err := gra.RunWith(p, params, cfg.cellRun())
		if err != nil {
			return nil, err
		}
		best := make([]float64, 0, len(res.History))
		mean := make([]float64, 0, len(res.History))
		for _, h := range res.History {
			best = append(best, h.BestFitness)
			mean = append(mean, h.MeanFitness)
		}
		uLabel := trimFloat(100 * u)
		fig.Series = append(fig.Series,
			Series{Name: "best U=" + uLabel + "%", Y: best},
			Series{Name: "mean U=" + uLabel + "%", Y: mean},
		)
	}
	return fig, nil
}
