package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for name, cfg := range map[string]Config{
		"paper": Paper(),
		"quick": Quick(),
		"tiny":  Tiny(),
	} {
		if err := cfg.validate(); err != nil {
			t.Errorf("%s preset invalid: %v", name, err)
		}
	}
}

func TestValidFigure(t *testing.T) {
	for _, id := range FigureIDs {
		if !ValidFigure(id) {
			t.Errorf("ValidFigure(%q) = false", id)
		}
	}
	for _, id := range []string{"", "5a", "1e", "fig1a"} {
		if ValidFigure(id) {
			t.Errorf("ValidFigure(%q) = true", id)
		}
	}
}

func TestCampaignRejectsBadConfig(t *testing.T) {
	cfg := Tiny()
	cfg.Networks = 0
	if _, err := NewCampaign(cfg, nil); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestCampaignUnknownFigure(t *testing.T) {
	c, err := NewCampaign(Tiny(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Figure("9z"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestTinyCampaignAllFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign run in -short mode")
	}
	c, err := NewCampaign(Tiny(), nil)
	if err != nil {
		t.Fatal(err)
	}
	figs, err := c.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != len(FigureIDs) {
		t.Fatalf("%d figures, want %d", len(figs), len(FigureIDs))
	}
	for _, fig := range figs {
		if len(fig.X) == 0 {
			t.Errorf("figure %s has no x points", fig.ID)
		}
		if len(fig.Series) == 0 {
			t.Errorf("figure %s has no series", fig.ID)
		}
		for _, s := range fig.Series {
			if len(s.Y) != len(fig.X) {
				t.Errorf("figure %s series %q has %d points for %d x values", fig.ID, s.Name, len(s.Y), len(fig.X))
			}
		}
	}
	// Core paper claim: GRA savings ≥ SRA savings at every shared point of
	// figure 1(a) (allowing a whisker of GA noise at tiny budgets).
	fig1a := figs[0]
	for _, u := range []string{"U=2%", "U=10%"} {
		sra := fig1a.Get("SRA " + u)
		gra := fig1a.Get("GRA " + u)
		if sra == nil || gra == nil {
			t.Fatalf("figure 1a missing series for %s: have %v", u, names(fig1a))
		}
		for i := range sra.Y {
			if gra.Y[i] < sra.Y[i]-8 {
				t.Errorf("fig1a %s x=%v: GRA %.2f%% much worse than SRA %.2f%%", u, fig1a.X[i], gra.Y[i], sra.Y[i])
			}
		}
	}
}

func names(f *FigureResult) []string {
	out := make([]string, len(f.Series))
	for i, s := range f.Series {
		out[i] = s.Name
	}
	return out
}

func TestFigureRender(t *testing.T) {
	fig := &FigureResult{
		ID:     "1a",
		Title:  "test figure",
		XLabel: "sites",
		YLabel: "% savings",
		X:      []float64{10, 20},
		Series: []Series{
			{Name: "SRA", Y: []float64{1.5, 2}},
			{Name: "GRA", Y: []float64{3, 4.25}},
		},
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 1a", "SRA", "GRA", "1.5", "4.25", "sites"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := fig.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if lines[0] != "sites,SRA,GRA" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if lines[1] != "10,1.5,3" {
		t.Fatalf("CSV row = %q", lines[1])
	}
}

func TestFigureGet(t *testing.T) {
	fig := &FigureResult{Series: []Series{{Name: "a"}, {Name: "b"}}}
	if fig.Get("b") == nil || fig.Get("c") != nil {
		t.Fatal("Get lookup broken")
	}
}

func TestTrimFloat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{1, "1"},
		{1.5, "1.5"},
		{1.25, "1.25"},
		{1.2345, "1.234"},
		{0, "0"},
		{-3, "-3"},
	}
	for _, tt := range tests {
		if got := trimFloat(tt.in); got != tt.want {
			t.Errorf("trimFloat(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestMean(t *testing.T) {
	if mean(nil) != 0 {
		t.Fatal("mean(nil) != 0")
	}
	if got := mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("mean = %v, want 2", got)
	}
}

func TestPointSeedDistinct(t *testing.T) {
	cfg := Tiny()
	seen := make(map[uint64]bool)
	for a := uint64(0); a < 10; a++ {
		for b := uint64(0); b < 10; b++ {
			s := cfg.pointSeed(a, b)
			if seen[s] {
				t.Fatalf("seed collision at (%d,%d)", a, b)
			}
			seen[s] = true
		}
	}
	if cfg.pointSeed(1, 2) != cfg.pointSeed(1, 2) {
		t.Fatal("pointSeed not deterministic")
	}
}

func TestCsvEscape(t *testing.T) {
	if got := csvEscape(`plain`); got != "plain" {
		t.Fatalf("csvEscape plain = %q", got)
	}
	if got := csvEscape(`a,b`); got != `"a,b"` {
		t.Fatalf("csvEscape comma = %q", got)
	}
	if got := csvEscape(`say "hi"`); got != `"say ""hi"""` {
		t.Fatalf("csvEscape quote = %q", got)
	}
}

func TestRunSummary(t *testing.T) {
	res, err := RunSummary(Tiny(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(res.Rows))
	}
	byName := make(map[string]SummaryRow, len(res.Rows))
	for _, row := range res.Rows {
		byName[row.Algorithm] = row
	}
	if byName["no replication"].Savings != 0 {
		t.Fatal("no-replication savings not zero")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SRA (paper)") {
		t.Fatalf("summary table missing rows:\n%s", buf.String())
	}
}

func TestRunConvergence(t *testing.T) {
	cfg := Tiny()
	fig, err := RunConvergence(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.X) != cfg.GRAGens+1 {
		t.Fatalf("%d generations plotted, want %d", len(fig.X), cfg.GRAGens+1)
	}
	if len(fig.Series) != 2*len(cfg.UpdateRatios) {
		t.Fatalf("%d series, want %d", len(fig.Series), 2*len(cfg.UpdateRatios))
	}
	for _, s := range fig.Series {
		if len(s.Y) != len(fig.X) {
			t.Fatalf("series %q has %d points", s.Name, len(s.Y))
		}
	}
	// Best fitness is monotone by elitism.
	best := fig.Series[0]
	for i := 1; i < len(best.Y); i++ {
		if best.Y[i] < best.Y[i-1] {
			t.Fatal("best fitness regressed")
		}
	}
}

func TestSummaryRejectsBadConfig(t *testing.T) {
	cfg := Tiny()
	cfg.GRAPop = 0
	if _, err := RunSummary(cfg, nil); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := RunConvergence(cfg, nil); err == nil {
		t.Fatal("bad config accepted by convergence")
	}
}

func TestStddev(t *testing.T) {
	if stddev(nil) != 0 || stddev([]float64{5}) != 0 {
		t.Fatal("degenerate stddev not zero")
	}
	// {2,4,4,4,5,5,7,9} has population stddev 2.
	got := stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got < 1.999 || got > 2.001 {
		t.Fatalf("stddev = %v, want 2", got)
	}
}

func TestSavingsStdRecorded(t *testing.T) {
	cfg := Tiny()
	cfg.Networks = 2
	cfg.UpdateSweep = []float64{0.05}
	sweep, err := cfg.runUpdateSweep(func(string, ...interface{}) {})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range sweep.Variants {
		if len(v.SavingsStd) != len(v.Savings) {
			t.Fatalf("variant %s: %d std values for %d points", v.Label, len(v.SavingsStd), len(v.Savings))
		}
		for _, s := range v.SavingsStd {
			if s < 0 {
				t.Fatalf("negative stddev %v", s)
			}
		}
	}
}
