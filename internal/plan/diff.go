package plan

import (
	"fmt"
	"sort"

	"drp/internal/core"
)

// StepKind classifies one migration step.
type StepKind int

// Migration step kinds, in execution-phase order: every Copy lands before
// any Promote, and every Promote before any Drop.
const (
	Copy StepKind = iota + 1
	Promote
	Drop
)

func (k StepKind) String() string {
	switch k {
	case Copy:
		return "copy"
	case Promote:
		return "promote"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// Step is one unit of migration work. For a Copy, Site gains a replica of
// Object fetched from From at the given transfer cost (size × C). For a
// Promote, Site becomes Object's primary, taking over from From. For a
// Drop, Site deletes its replica.
type Step struct {
	Kind   StepKind `json:"kind"`
	Object int      `json:"object"`
	Site   int      `json:"site"`
	From   int      `json:"from,omitempty"`
	Cost   int64    `json:"cost,omitempty"`
}

func (s Step) String() string {
	switch s.Kind {
	case Copy:
		return fmt.Sprintf("copy obj %d to site %d from %d (cost %d)", s.Object, s.Site, s.From, s.Cost)
	case Promote:
		return fmt.Sprintf("promote obj %d primary %d -> %d", s.Object, s.From, s.Site)
	default:
		return fmt.Sprintf("drop obj %d from site %d", s.Object, s.Site)
	}
}

// Diff computes the ordered migration steps that take the data plane from
// plan old to plan next. Copies come first: each replica gained in next is
// fetched from the min-cost current holder, preferring holders that
// survive into next's view (a departing site is used as a source only
// when it holds the sole copy), ties broken by lowest site index. Then
// primary promotions, then drops — so replicas copy in before anything
// serves from them, and a departing site drains (keeps serving as a
// source) before its replicas are dropped. The cost function must be
// valid for every pair of sites in old.View ∪ next.View; p supplies
// object sizes.
func Diff(old, next *Plan, p *core.Problem, cost CostFn) ([]Step, error) {
	if len(old.Placement) != len(next.Placement) {
		return nil, fmt.Errorf("plan: diff over %d vs %d objects", len(old.Placement), len(next.Placement))
	}
	var copies, promotes, drops []Step
	for k := range next.Placement {
		for _, site := range next.Placement[k] {
			if old.Has(site, k) {
				continue
			}
			from, c, err := bestSource(old, next, k, site, cost)
			if err != nil {
				return nil, err
			}
			copies = append(copies, Step{Kind: Copy, Object: k, Site: site, From: from, Cost: p.Size(k) * c})
		}
		if old.Primaries[k] != next.Primaries[k] {
			promotes = append(promotes, Step{Kind: Promote, Object: k, Site: next.Primaries[k], From: old.Primaries[k]})
		}
		for _, site := range old.Placement[k] {
			if !next.Has(site, k) {
				drops = append(drops, Step{Kind: Drop, Object: k, Site: site})
			}
		}
	}
	order := func(steps []Step) {
		sort.Slice(steps, func(a, b int) bool {
			if steps[a].Object != steps[b].Object {
				return steps[a].Object < steps[b].Object
			}
			return steps[a].Site < steps[b].Site
		})
	}
	order(copies)
	order(promotes)
	order(drops)
	steps := make([]Step, 0, len(copies)+len(promotes)+len(drops))
	steps = append(steps, copies...)
	steps = append(steps, promotes...)
	steps = append(steps, drops...)
	return steps, nil
}

// bestSource picks where a new replica of object k at dst is fetched
// from: the min-cost holder under old, preferring holders that remain
// members of next's view.
func bestSource(old, next *Plan, k, dst int, cost CostFn) (int, int64, error) {
	best, bestCost, bestSurvives := -1, int64(0), false
	for _, src := range old.Placement[k] {
		if src == dst {
			continue
		}
		c := cost(src, dst)
		if c < 0 {
			continue
		}
		survives := next.View.Has(src)
		better := best < 0 ||
			(survives && !bestSurvives) ||
			(survives == bestSurvives && c < bestCost)
		if better {
			best, bestCost, bestSurvives = src, c, survives
		}
	}
	if best < 0 {
		return 0, 0, fmt.Errorf("plan: no reachable source for object %d at site %d", k, dst)
	}
	return best, bestCost, nil
}

// TotalCost sums the transfer cost of a step list — the exact a-priori
// migration NTC the data plane will account when executing it.
func TotalCost(steps []Step) int64 {
	var sum int64
	for _, s := range steps {
		sum += s.Cost
	}
	return sum
}

// ServeCost evaluates eq. 4 for the plan over its view, with exactly the
// accounting the netnode data plane uses on the wire: a read from member
// i costs size × C(i, nearest replica); a write from member i ships
// size × C(i, primary) to the primary, which broadcasts size × C(primary,
// j) to every other replicator except the writer. Demand at non-member
// sites does not exist. The cost function must cover all member pairs.
func ServeCost(p *core.Problem, pl *Plan, cost CostFn) int64 {
	var total int64
	for _, i := range pl.View.Members {
		for k := 0; k < p.Objects(); k++ {
			if r := p.Reads(i, k); r > 0 {
				best := int64(-1)
				for _, j := range pl.Placement[k] {
					c := int64(0)
					if j != i {
						c = cost(i, j)
					}
					if best < 0 || c < best {
						best = c
					}
				}
				total += r * p.Size(k) * best
			}
			if w := p.Writes(i, k); w > 0 {
				sp := pl.Primaries[k]
				per := int64(0)
				if i != sp {
					per = p.Size(k) * cost(i, sp)
				}
				for _, j := range pl.Placement[k] {
					if j == i || j == sp {
						continue
					}
					per += p.Size(k) * cost(sp, j)
				}
				total += w * per
			}
		}
	}
	return total
}
