// Package plan defines the control plane's unit of intent: an
// epoch-numbered placement plan over a membership view. A Plan says, for
// every object in the universe problem, which member sites hold a replica
// and which member is the primary copy. Plans have a canonical codec (so
// two plans with the same content marshal to the same bytes and the same
// fingerprint), validity checks against a universe problem, and a Diff
// that turns the gap between two plans into an ordered list of migration
// steps — copies routed along min-cost C(i,j) paths first, then primary
// promotions, then drops, so a site never serves an object before its
// replica has arrived and never drops one another site still needs to
// copy from.
package plan

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"drp/internal/core"
	"drp/internal/membership"
)

// CostFn reports the transfer cost C(i,j) between two universe sites. A
// membership.Tracker's Cost method satisfies it, as does a universe
// Problem's Cost when the whole universe is serving.
type CostFn func(i, j int) int64

// Plan is one epoch of placement intent. Placement and Primaries are
// universe-indexed: Placement[k] lists the universe sites holding object
// k (sorted ascending), Primaries[k] is the universe site owning k's
// primary copy. Every listed site must belong to View.
type Plan struct {
	Epoch     int             `json:"epoch"`
	View      membership.View `json:"view"`
	Primaries []int           `json:"primaries"`
	Placement [][]int         `json:"placement"`
}

// FromScheme lifts a scheme over the universe problem into a plan: the
// view is every universe site, primaries are the problem's. Use it to
// seed a plan sequence from a static solve.
func FromScheme(s *core.Scheme) *Plan {
	p := s.Problem()
	members := make([]int, p.Sites())
	for i := range members {
		members[i] = i
	}
	pl := &Plan{
		View:      membership.View{Members: members},
		Primaries: make([]int, p.Objects()),
		Placement: make([][]int, p.Objects()),
	}
	for k := 0; k < p.Objects(); k++ {
		pl.Primaries[k] = p.Primary(k)
		pl.Placement[k] = s.Replicators(k)
	}
	return pl
}

// FromSchemeView lifts a universe-indexed scheme into a plan over the
// given view, keeping the problem's primaries. Every placement (and so
// every primary) must fall inside the view.
func FromSchemeView(s *core.Scheme, view membership.View) (*Plan, error) {
	p := s.Problem()
	pl := &Plan{
		View:      view.Clone(),
		Primaries: make([]int, p.Objects()),
		Placement: make([][]int, p.Objects()),
	}
	for k := 0; k < p.Objects(); k++ {
		pl.Primaries[k] = p.Primary(k)
		pl.Placement[k] = s.Replicators(k)
		for _, site := range pl.Placement[k] {
			if !view.Has(site) {
				return nil, fmt.Errorf("plan: scheme places object %d on site %d outside the view", k, site)
			}
		}
	}
	return pl, nil
}

// Lift maps a scheme solved over a view-restricted problem back to
// universe coordinates: dense site d becomes view.Members[d]. The
// restricted problem's primaries are lifted the same way.
func Lift(view membership.View, restricted *core.Scheme) *Plan {
	rp := restricted.Problem()
	pl := &Plan{
		View:      view.Clone(),
		Primaries: make([]int, rp.Objects()),
		Placement: make([][]int, rp.Objects()),
	}
	for k := 0; k < rp.Objects(); k++ {
		pl.Primaries[k] = view.Members[rp.Primary(k)]
		dense := restricted.Replicators(k)
		sites := make([]int, len(dense))
		for x, d := range dense {
			sites[x] = view.Members[d]
		}
		sort.Ints(sites)
		pl.Placement[k] = sites
	}
	return pl
}

// Clone returns a deep copy.
func (pl *Plan) Clone() *Plan {
	c := &Plan{
		Epoch:     pl.Epoch,
		View:      pl.View.Clone(),
		Primaries: append([]int(nil), pl.Primaries...),
		Placement: make([][]int, len(pl.Placement)),
	}
	for k, sites := range pl.Placement {
		c.Placement[k] = append([]int(nil), sites...)
	}
	return c
}

// Equal reports whether two plans carry identical content, epochs
// included.
func (pl *Plan) Equal(o *Plan) bool {
	if pl.Epoch != o.Epoch || !pl.View.Equal(o.View) || len(pl.Primaries) != len(o.Primaries) || len(pl.Placement) != len(o.Placement) {
		return false
	}
	for k := range pl.Primaries {
		if pl.Primaries[k] != o.Primaries[k] {
			return false
		}
	}
	for k := range pl.Placement {
		if len(pl.Placement[k]) != len(o.Placement[k]) {
			return false
		}
		for x := range pl.Placement[k] {
			if pl.Placement[k][x] != o.Placement[k][x] {
				return false
			}
		}
	}
	return true
}

// Has reports whether site holds a replica of object k under the plan.
func (pl *Plan) Has(site, k int) bool {
	i := sort.SearchInts(pl.Placement[k], site)
	return i < len(pl.Placement[k]) && pl.Placement[k][i] == site
}

// Marshal encodes the plan canonically: fixed key order, no whitespace
// variance, nil slices normalised to empty. Two equal plans always
// marshal to identical bytes.
func (pl *Plan) Marshal() ([]byte, error) {
	c := pl.Clone()
	if c.View.Members == nil {
		c.View.Members = []int{}
	}
	if c.Primaries == nil {
		c.Primaries = []int{}
	}
	if c.Placement == nil {
		c.Placement = [][]int{}
	}
	for k, sites := range c.Placement {
		if sites == nil {
			c.Placement[k] = []int{}
		}
	}
	return json.Marshal(c)
}

// Unmarshal decodes a plan previously produced by Marshal and normalises
// its slices (sorted members and placements) so downstream binary
// searches hold.
func Unmarshal(data []byte) (*Plan, error) {
	var pl Plan
	if err := json.Unmarshal(data, &pl); err != nil {
		return nil, fmt.Errorf("plan: decode: %w", err)
	}
	sort.Ints(pl.View.Members)
	for _, sites := range pl.Placement {
		sort.Ints(sites)
	}
	return &pl, nil
}

// Fingerprint is a hex digest of the canonical encoding — a cheap
// identity for journals and wire exchanges.
func (pl *Plan) Fingerprint() string {
	data, err := pl.Marshal()
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// Validate checks the plan against the universe problem: every object has
// at least one replica, its primary holds one, every replica site is a
// view member inside the universe, placements are sorted and duplicate
// free, and no member's capacity is exceeded.
func (pl *Plan) Validate(p *core.Problem) error {
	if len(pl.Primaries) != p.Objects() || len(pl.Placement) != p.Objects() {
		return fmt.Errorf("plan: %d primaries / %d placements for %d objects",
			len(pl.Primaries), len(pl.Placement), p.Objects())
	}
	used := make(map[int]int64)
	for k := 0; k < p.Objects(); k++ {
		sites := pl.Placement[k]
		if len(sites) == 0 {
			return fmt.Errorf("plan: object %d has no replicas", k)
		}
		for x, s := range sites {
			if s < 0 || s >= p.Sites() {
				return fmt.Errorf("plan: object %d placed on site %d outside universe of %d", k, s, p.Sites())
			}
			if !pl.View.Has(s) {
				return fmt.Errorf("plan: object %d placed on site %d which is not in view epoch %d", k, s, pl.View.Epoch)
			}
			if x > 0 && sites[x-1] >= s {
				return fmt.Errorf("plan: object %d placement not sorted/unique at site %d", k, s)
			}
			used[s] += p.Size(k)
		}
		if !pl.Has(pl.Primaries[k], k) {
			return fmt.Errorf("plan: object %d primary %d holds no replica", k, pl.Primaries[k])
		}
	}
	for s, u := range used {
		if u > p.Capacity(s) {
			return fmt.Errorf("plan: site %d needs %d units but has capacity %d", s, u, p.Capacity(s))
		}
	}
	return nil
}
