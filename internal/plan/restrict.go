package plan

import (
	"fmt"

	"drp/internal/core"
	"drp/internal/membership"
	"drp/internal/netsim"
)

// Restrict builds the dense sub-problem a solver sees for one view: rows
// for member sites only, in view order, with the given universe-indexed
// primaries mapped to dense indices and sub as the member-to-member
// distance matrix (a membership.Tracker's SubMatrix, whose site map is
// exactly view.Members). Demand at non-member sites is gone — a departed
// site issues no reads or writes. Solve the result with any of the
// static/adaptive algorithms, then Lift the scheme back to universe
// coordinates.
func Restrict(p *core.Problem, view membership.View, primaries []int, sub *netsim.DistMatrix) (*core.Problem, error) {
	m := len(view.Members)
	if sub.Sites() != m {
		return nil, fmt.Errorf("plan: sub-matrix has %d sites for a view of %d members", sub.Sites(), m)
	}
	if len(primaries) != p.Objects() {
		return nil, fmt.Errorf("plan: %d primaries for %d objects", len(primaries), p.Objects())
	}
	idx := view.Index()
	densePrim := make([]int, p.Objects())
	for k, sp := range primaries {
		d, ok := idx[sp]
		if !ok {
			return nil, fmt.Errorf("plan: object %d primary %d is not a member of view epoch %d", k, sp, view.Epoch)
		}
		densePrim[k] = d
	}
	sizes := make([]int64, p.Objects())
	for k := range sizes {
		sizes[k] = p.Size(k)
	}
	caps := make([]int64, m)
	reads := make([][]int64, m)
	writes := make([][]int64, m)
	for d, site := range view.Members {
		caps[d] = p.Capacity(site)
		reads[d] = make([]int64, p.Objects())
		writes[d] = make([]int64, p.Objects())
		for k := 0; k < p.Objects(); k++ {
			reads[d][k] = p.Reads(site, k)
			writes[d][k] = p.Writes(site, k)
		}
	}
	return core.NewProblem(core.Config{
		Sizes:      sizes,
		Capacities: caps,
		Primaries:  densePrim,
		Reads:      reads,
		Writes:     writes,
		Dist:       sub,
	})
}
