package plan

import (
	"testing"

	"drp/internal/core"
	"drp/internal/membership"
	"drp/internal/netsim"
	"drp/internal/sra"
	"drp/internal/workload"
)

func genProblem(t *testing.T, sites, objects int, seed uint64) *core.Problem {
	t.Helper()
	p, err := workload.Generate(workload.NewSpec(sites, objects, 0.05, 0.40), seed)
	if err != nil {
		t.Fatalf("workload.Generate: %v", err)
	}
	return p
}

func TestFromSchemeValidates(t *testing.T) {
	p := genProblem(t, 6, 12, 1)
	s := sra.Run(p, sra.Options{}).Scheme
	pl := FromScheme(s)
	if err := pl.Validate(p); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if pl.View.Members[0] != 0 || len(pl.View.Members) != p.Sites() {
		t.Fatalf("FromScheme view = %v", pl.View)
	}
	for k := 0; k < p.Objects(); k++ {
		if !pl.Has(p.Primary(k), k) {
			t.Fatalf("object %d primary not placed", k)
		}
	}

	// A primary without a replica must be rejected.
	broken := pl.Clone()
	broken.Primaries[0] = -1
	if err := broken.Validate(p); err == nil {
		t.Fatal("plan with out-of-universe primary accepted")
	}
	broken = pl.Clone()
	sp := broken.Primaries[3]
	keep := broken.Placement[3][:0]
	for _, s := range broken.Placement[3] {
		if s != sp {
			keep = append(keep, s)
		}
	}
	if len(keep) > 0 {
		broken.Placement[3] = keep
		if err := broken.Validate(p); err == nil {
			t.Fatal("plan whose primary holds no replica accepted")
		}
	}
	// A replica outside the view must be rejected.
	broken = pl.Clone()
	broken.View.Members = broken.View.Members[:p.Sites()-1]
	placedOnLast := false
	for k := range broken.Placement {
		if broken.Has(p.Sites()-1, k) {
			placedOnLast = true
		}
	}
	if placedOnLast {
		if err := broken.Validate(p); err == nil {
			t.Fatal("plan placing on a non-member accepted")
		}
	}
	// An empty placement must be rejected.
	broken = pl.Clone()
	broken.Placement[0] = nil
	if err := broken.Validate(p); err == nil {
		t.Fatal("plan with replica-free object accepted")
	}
}

func TestCodecRoundTripAndFingerprint(t *testing.T) {
	p := genProblem(t, 5, 9, 2)
	pl := FromScheme(sra.Run(p, sra.Options{}).Scheme)
	pl.Epoch = 7
	data, err := pl.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !pl.Equal(back) {
		t.Fatalf("round trip changed the plan:\n  in  %+v\n  out %+v", pl, back)
	}
	data2, err := back.Marshal()
	if err != nil {
		t.Fatalf("re-Marshal: %v", err)
	}
	if string(data) != string(data2) {
		t.Fatalf("codec not canonical:\n  %s\n  %s", data, data2)
	}
	if pl.Fingerprint() != back.Fingerprint() {
		t.Fatal("fingerprints differ after round trip")
	}
	changed := pl.Clone()
	changed.Epoch++
	if changed.Fingerprint() == pl.Fingerprint() {
		t.Fatal("fingerprint ignores epoch")
	}
}

// line4 is a 4-site universe on a line with hop cost 1: C(i,j) = |i-j|.
func line4(t *testing.T) *core.Problem {
	t.Helper()
	topo := netsim.NewTopology(4)
	for i := 0; i+1 < 4; i++ {
		topo.Links = append(topo.Links, netsim.Link{From: i, To: i + 1, Cost: 1})
	}
	d, err := topo.Distances()
	if err != nil {
		t.Fatalf("Distances: %v", err)
	}
	p, err := core.NewProblem(core.Config{
		Sizes:      []int64{10, 3},
		Capacities: []int64{40, 40, 40, 40},
		Primaries:  []int{0, 3},
		Reads:      [][]int64{{1, 1}, {1, 1}, {1, 1}, {1, 1}},
		Writes:     [][]int64{{0, 0}, {0, 0}, {0, 0}, {0, 0}},
		Dist:       d,
	})
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	return p
}

func TestDiffOrderingAndRouting(t *testing.T) {
	p := line4(t)
	old := &Plan{
		Epoch:     1,
		View:      membership.View{Epoch: 0, Members: []int{0, 1, 3}},
		Primaries: []int{0, 3},
		Placement: [][]int{{0, 1}, {3}},
	}
	// Site 0 leaves, site 2 joins: object 0's primary moves to 1, object 0
	// gains a replica at 2, object 1 gains one at 2, site 0 drains.
	next := &Plan{
		Epoch:     2,
		View:      membership.View{Epoch: 2, Members: []int{1, 2, 3}},
		Primaries: []int{1, 3},
		Placement: [][]int{{1, 2}, {2, 3}},
	}
	steps, err := Diff(old, next, p, p.Cost)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	var kinds []StepKind
	for _, s := range steps {
		kinds = append(kinds, s.Kind)
	}
	// Phase order: all copies, then promotes, then drops.
	last := Copy
	for i, k := range kinds {
		if k < last {
			t.Fatalf("step %d of kind %v after %v: %v", i, k, last, steps)
		}
		last = k
	}
	want := []Step{
		// Object 0 to site 2: survivor 1 (cost 1) beats departing 0 (cost 2).
		{Kind: Copy, Object: 0, Site: 2, From: 1, Cost: 10 * 1},
		// Object 1 to site 2 from its only holder 3.
		{Kind: Copy, Object: 1, Site: 2, From: 3, Cost: 3 * 1},
		{Kind: Promote, Object: 0, Site: 1, From: 0},
		{Kind: Drop, Object: 0, Site: 0},
	}
	if len(steps) != len(want) {
		t.Fatalf("got %d steps %v, want %d", len(steps), steps, len(want))
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("step %d = %+v, want %+v", i, steps[i], want[i])
		}
	}
	if got := TotalCost(steps); got != 13 {
		t.Fatalf("TotalCost = %d, want 13", got)
	}
}

func TestDiffSourcePrefersSurvivorEvenWhenFarther(t *testing.T) {
	p := line4(t)
	old := &Plan{
		View:      membership.View{Members: []int{0, 1, 3}},
		Primaries: []int{3, 3},
		Placement: [][]int{{1, 3}, {3}},
	}
	next := &Plan{
		View:      membership.View{Members: []int{0, 3}},
		Primaries: []int{3, 3},
		Placement: [][]int{{0, 3}, {3}},
	}
	steps, err := Diff(old, next, p, p.Cost)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	// Departing site 1 is one hop from 0 but survivor 3 (three hops) must
	// be preferred; site 1's replica is dropped only after the copy.
	if len(steps) != 2 || steps[0].Kind != Copy || steps[0].From != 3 || steps[1].Kind != Drop || steps[1].Site != 1 {
		t.Fatalf("steps = %v", steps)
	}
	// When the departing site holds the sole copy it must still be usable
	// as a source (drain before drop).
	soleOld := &Plan{
		View:      membership.View{Members: []int{1, 3}},
		Primaries: []int{1, 3},
		Placement: [][]int{{1}, {3}},
	}
	soleNext := &Plan{
		View:      membership.View{Members: []int{3}},
		Primaries: []int{3, 3},
		Placement: [][]int{{3}, {3}},
	}
	steps, err = Diff(soleOld, soleNext, p, p.Cost)
	if err != nil {
		t.Fatalf("Diff sole-copy: %v", err)
	}
	if len(steps) != 3 || steps[0] != (Step{Kind: Copy, Object: 0, Site: 3, From: 1, Cost: 10 * 2}) {
		t.Fatalf("sole-copy steps = %v", steps)
	}
	if steps[1].Kind != Promote || steps[2].Kind != Drop {
		t.Fatalf("sole-copy ordering = %v", steps)
	}
}

// TestServeCostMatchesEquation4 pins the plan-level accounting against the
// core evaluator: over a full-universe view the two are the same formula.
func TestServeCostMatchesEquation4(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		p := genProblem(t, 7, 15, seed)
		s := sra.Run(p, sra.Options{}).Scheme
		pl := FromScheme(s)
		if got, want := ServeCost(p, pl, p.Cost), s.Cost(); got != want {
			t.Fatalf("seed %d: ServeCost = %d, evaluator = %d", seed, got, want)
		}
	}
}

// TestRestrictLiftRoundTrip solves a view-restricted problem and checks
// the lifted plan is valid over the universe, and that restricting again
// reproduces the same dense problem.
func TestRestrictLiftRoundTrip(t *testing.T) {
	p := genProblem(t, 8, 10, 3)
	topo := netsim.Complete(p.Dist())
	// Keep every primary in the initial membership (required by the data
	// plane); drop two non-primary sites.
	inUse := make(map[int]bool)
	for k := 0; k < p.Objects(); k++ {
		inUse[p.Primary(k)] = true
	}
	var members []int
	dropped := 0
	for i := 0; i < p.Sites(); i++ {
		if !inUse[i] && dropped < 2 {
			dropped++
			continue
		}
		members = append(members, i)
	}
	if dropped == 0 {
		t.Skip("every site is a primary for this seed")
	}
	tr, err := membership.NewTracker(topo, members)
	if err != nil {
		t.Fatalf("NewTracker: %v", err)
	}
	view := tr.View()
	sub, siteMap := tr.SubMatrix()
	for d, s := range siteMap {
		if view.Members[d] != s {
			t.Fatalf("SubMatrix site map %v disagrees with view %v", siteMap, view.Members)
		}
	}
	prims := make([]int, p.Objects())
	for k := range prims {
		prims[k] = p.Primary(k)
	}
	rp, err := Restrict(p, view, prims, sub)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if rp.Sites() != len(members) || rp.Objects() != p.Objects() {
		t.Fatalf("restricted dims %dx%d", rp.Sites(), rp.Objects())
	}
	s := sra.Run(rp, sra.Options{}).Scheme
	pl := Lift(view, s)
	if err := pl.Validate(p); err != nil {
		t.Fatalf("lifted plan invalid: %v", err)
	}
	for k := 0; k < p.Objects(); k++ {
		if pl.Primaries[k] != prims[k] {
			t.Fatalf("object %d primary moved from %d to %d during lift", k, prims[k], pl.Primaries[k])
		}
	}
	// The dense solve's cost equals the universe-side plan accounting: the
	// restricted evaluator and ServeCost over the view are the same sum.
	if got, want := ServeCost(p, pl, tr.Cost), s.Cost(); got != want {
		t.Fatalf("ServeCost over view = %d, restricted evaluator = %d", got, want)
	}
	// Primaries outside the view must be rejected.
	bad := append([]int(nil), prims...)
	for i := 0; i < p.Sites(); i++ {
		if !view.Has(i) {
			bad[0] = i
			break
		}
	}
	if _, err := Restrict(p, view, bad, sub); err == nil {
		t.Fatal("Restrict accepted a non-member primary")
	}
}
