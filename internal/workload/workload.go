// Package workload generates DRP instances following Section 6.1 of the
// paper, and the daytime pattern shifts of Section 6.3 used to evaluate the
// adaptive algorithm.
//
// The paper's generator, reproduced exactly:
//
//   - every pair of sites is linked with cost U(1,10) (hop counts); C(i,j)
//     is the shortest path over those links;
//   - each object's primary copy lands on a uniformly random site;
//   - reads r_k(i) ~ U(1,40) for every (site, object) pair;
//   - each object's update total is U% of its read total, smeared by
//     U(T/2, 3T/2), and assigned to uniformly random sites one by one;
//   - object sizes are uniform with mean 35 (here U(1,69));
//   - site capacities are U(C·S/2, 3C·S/2) where S = Σ o_k and C is the
//     capacity ratio.
package workload

import (
	"fmt"

	"drp/internal/core"
	"drp/internal/netsim"
	"drp/internal/xrand"
)

// Spec parameterises the Section 6.1 generator. NewSpec supplies the
// paper's constants; tests and experiments override the fields they sweep.
type Spec struct {
	Sites   int // M
	Objects int // N

	UpdateRatio   float64 // U: update total as a fraction of read total (paper: 0.02..0.10)
	CapacityRatio float64 // C: site capacity as a fraction of Σ o_k (paper: 0.10..0.30)

	ReadMin, ReadMax int // per-(site,object) reads, paper: 1..40
	LinkMin, LinkMax int // per-link cost, paper: 1..10
	SizeMean         int // object size mean, paper: 35 (sizes U(1, 2·mean−1))
}

// NewSpec returns a Spec with the paper's constants for M sites and N
// objects, update ratio u and capacity ratio c (both as fractions, e.g.
// 0.05 and 0.15).
func NewSpec(sites, objects int, u, c float64) Spec {
	return Spec{
		Sites:         sites,
		Objects:       objects,
		UpdateRatio:   u,
		CapacityRatio: c,
		ReadMin:       1,
		ReadMax:       40,
		LinkMin:       1,
		LinkMax:       10,
		SizeMean:      35,
	}
}

func (s Spec) validate() error {
	switch {
	case s.Sites <= 0:
		return fmt.Errorf("workload: need at least one site, got %d", s.Sites)
	case s.Objects <= 0:
		return fmt.Errorf("workload: need at least one object, got %d", s.Objects)
	case s.UpdateRatio < 0:
		return fmt.Errorf("workload: negative update ratio %v", s.UpdateRatio)
	case s.CapacityRatio < 0:
		return fmt.Errorf("workload: negative capacity ratio %v", s.CapacityRatio)
	case s.ReadMin < 0 || s.ReadMax < s.ReadMin:
		return fmt.Errorf("workload: bad read range [%d,%d]", s.ReadMin, s.ReadMax)
	case s.LinkMin < 1 || s.LinkMax < s.LinkMin:
		return fmt.Errorf("workload: bad link cost range [%d,%d]", s.LinkMin, s.LinkMax)
	case s.SizeMean < 1:
		return fmt.Errorf("workload: object size mean %d < 1", s.SizeMean)
	}
	return nil
}

// Generate builds one random instance. Identical seeds produce identical
// instances.
func Generate(spec Spec, seed uint64) (*core.Problem, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(seed)
	m, n := spec.Sites, spec.Objects

	var dist *netsim.DistMatrix
	if m == 1 {
		dist = netsim.NewDistMatrix(1)
	} else {
		topo := netsim.CompleteUniform(m, int64(spec.LinkMin), int64(spec.LinkMax), rng)
		var err error
		dist, err = topo.Distances()
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
	}

	primaries := make([]int, n)
	for k := range primaries {
		primaries[k] = rng.Intn(m)
	}

	reads := make([][]int64, m)
	for i := range reads {
		reads[i] = make([]int64, n)
		for k := range reads[i] {
			reads[i][k] = int64(rng.IntRange(spec.ReadMin, spec.ReadMax))
		}
	}

	writes := make([][]int64, m)
	for i := range writes {
		writes[i] = make([]int64, n)
	}
	for k := 0; k < n; k++ {
		var totalReads int64
		for i := 0; i < m; i++ {
			totalReads += reads[i][k]
		}
		base := spec.UpdateRatio * float64(totalReads)
		// Final update total ~ U(T/2, 3T/2) around the U%-of-reads base.
		total := int64(rng.FloatRange(base/2, 3*base/2) + 0.5)
		for u := int64(0); u < total; u++ {
			writes[rng.Intn(m)][k]++
		}
	}

	sizes := make([]int64, n)
	var totalSize int64
	for k := range sizes {
		sizes[k] = int64(rng.IntRange(1, 2*spec.SizeMean-1))
		totalSize += sizes[k]
	}

	caps := make([]int64, m)
	base := spec.CapacityRatio * float64(totalSize)
	for i := range caps {
		caps[i] = int64(rng.FloatRange(base/2, 3*base/2) + 0.5)
	}
	// Every primary copy must fit regardless of the random capacities, or
	// the instance is infeasible by construction. Grow capacities where the
	// draw fell short of the primaries a site must host.
	need := make([]int64, m)
	for k, sp := range primaries {
		need[sp] += sizes[k]
	}
	for i := range caps {
		if caps[i] < need[i] {
			caps[i] = need[i]
		}
	}

	return core.NewProblem(core.Config{
		Sizes:      sizes,
		Capacities: caps,
		Primaries:  primaries,
		Reads:      reads,
		Writes:     writes,
		Dist:       dist,
	})
}
