package workload

import (
	"fmt"
	"math"

	"drp/internal/core"
	"drp/internal/netsim"
	"drp/internal/xrand"
)

// ZipfSpec generates instances with Zipf-distributed object popularity —
// the skewed access patterns measured for web workloads (Arlitt &
// Williamson 1997), which the paper's uniform U(1,40) reads deliberately
// flatten. It reuses every other knob of Spec; only the read generation
// changes: object k's share of the total read volume is proportional to
// 1/(k+1)^Skew, and each object's reads are spread over sites uniformly.
type ZipfSpec struct {
	Spec
	// Skew is the Zipf exponent s ≥ 0 (0 = uniform popularity; web traces
	// are commonly fit around 0.6–1.0).
	Skew float64
}

// NewZipfSpec returns a ZipfSpec with the paper's base constants and the
// given skew.
func NewZipfSpec(sites, objects int, u, c, skew float64) ZipfSpec {
	return ZipfSpec{Spec: NewSpec(sites, objects, u, c), Skew: skew}
}

// GenerateZipf builds a random instance with Zipf-skewed object popularity.
// The aggregate read volume matches the uniform generator's expectation
// (M·N·(ReadMin+ReadMax)/2) so savings numbers are comparable across the
// two generators.
func GenerateZipf(spec ZipfSpec, seed uint64) (*core.Problem, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if spec.Skew < 0 {
		return nil, fmt.Errorf("workload: negative Zipf skew %v", spec.Skew)
	}
	rng := xrand.New(seed)
	m, n := spec.Sites, spec.Objects

	var dist *netsim.DistMatrix
	if m == 1 {
		dist = netsim.NewDistMatrix(1)
	} else {
		topo := netsim.CompleteUniform(m, int64(spec.LinkMin), int64(spec.LinkMax), rng)
		var err error
		dist, err = topo.Distances()
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
	}

	primaries := make([]int, n)
	for k := range primaries {
		primaries[k] = rng.Intn(m)
	}

	// Popularity weights follow a Zipf law over a random object ranking,
	// so the hot objects are not always the low object ids.
	rank := rng.Perm(n)
	weights := make([]float64, n)
	var weightSum float64
	for k := 0; k < n; k++ {
		weights[k] = 1 / math.Pow(float64(rank[k]+1), spec.Skew)
		weightSum += weights[k]
	}

	totalVolume := float64(m) * float64(n) * float64(spec.ReadMin+spec.ReadMax) / 2
	reads := make([][]int64, m)
	for i := range reads {
		reads[i] = make([]int64, n)
	}
	for k := 0; k < n; k++ {
		objReads := int64(totalVolume*weights[k]/weightSum + 0.5)
		for r := int64(0); r < objReads; r++ {
			reads[rng.Intn(m)][k]++
		}
	}

	writes := make([][]int64, m)
	for i := range writes {
		writes[i] = make([]int64, n)
	}
	for k := 0; k < n; k++ {
		var totalReads int64
		for i := 0; i < m; i++ {
			totalReads += reads[i][k]
		}
		base := spec.UpdateRatio * float64(totalReads)
		total := int64(rng.FloatRange(base/2, 3*base/2) + 0.5)
		for u := int64(0); u < total; u++ {
			writes[rng.Intn(m)][k]++
		}
	}

	sizes := make([]int64, n)
	var totalSize int64
	for k := range sizes {
		sizes[k] = int64(rng.IntRange(1, 2*spec.SizeMean-1))
		totalSize += sizes[k]
	}
	caps := make([]int64, m)
	base := spec.CapacityRatio * float64(totalSize)
	for i := range caps {
		caps[i] = int64(rng.FloatRange(base/2, 3*base/2) + 0.5)
	}
	need := make([]int64, m)
	for k, sp := range primaries {
		need[sp] += sizes[k]
	}
	for i := range caps {
		if caps[i] < need[i] {
			caps[i] = need[i]
		}
	}

	return core.NewProblem(core.Config{
		Sizes:      sizes,
		Capacities: caps,
		Primaries:  primaries,
		Reads:      reads,
		Writes:     writes,
		Dist:       dist,
	})
}
