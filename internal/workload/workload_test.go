package workload

import (
	"math"
	"testing"
)

func TestGenerateDimensions(t *testing.T) {
	p, err := Generate(NewSpec(20, 30, 0.05, 0.15), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Sites() != 20 || p.Objects() != 30 {
		t.Fatalf("dims %d×%d, want 20×30", p.Sites(), p.Objects())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(NewSpec(10, 15, 0.05, 0.15), 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(NewSpec(10, 15, 0.05, 0.15), 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.DPrime() != b.DPrime() {
		t.Fatal("same seed produced different instances")
	}
	for i := 0; i < a.Sites(); i++ {
		for k := 0; k < a.Objects(); k++ {
			if a.Reads(i, k) != b.Reads(i, k) || a.Writes(i, k) != b.Writes(i, k) {
				t.Fatal("same seed produced different patterns")
			}
		}
	}
	c, err := Generate(NewSpec(10, 15, 0.05, 0.15), 43)
	if err != nil {
		t.Fatal(err)
	}
	if a.DPrime() == c.DPrime() {
		t.Fatal("different seeds produced identical D' (suspicious)")
	}
}

func TestGenerateReadRange(t *testing.T) {
	p, err := Generate(NewSpec(15, 20, 0.05, 0.15), 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.Sites(); i++ {
		for k := 0; k < p.Objects(); k++ {
			if r := p.Reads(i, k); r < 1 || r > 40 {
				t.Fatalf("reads(%d,%d) = %d outside [1,40]", i, k, r)
			}
		}
	}
}

func TestGenerateUpdateRatio(t *testing.T) {
	// Across many objects the mean update total should be close to U% of
	// the read total (each object's total is smeared U(T/2, 3T/2)).
	p, err := Generate(NewSpec(30, 200, 0.10, 0.15), 11)
	if err != nil {
		t.Fatal(err)
	}
	var reads, writes int64
	for k := 0; k < p.Objects(); k++ {
		reads += p.TotalReads(k)
		writes += p.TotalWrites(k)
	}
	ratio := float64(writes) / float64(reads)
	if math.Abs(ratio-0.10) > 0.02 {
		t.Fatalf("aggregate update ratio %v, want ~0.10", ratio)
	}
}

func TestGenerateObjectSizes(t *testing.T) {
	p, err := Generate(NewSpec(5, 500, 0.05, 0.15), 13)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for k := 0; k < p.Objects(); k++ {
		sz := p.Size(k)
		if sz < 1 || sz > 69 {
			t.Fatalf("size %d outside [1,69]", sz)
		}
		total += sz
	}
	mean := float64(total) / float64(p.Objects())
	if math.Abs(mean-35) > 3 {
		t.Fatalf("mean object size %v, want ~35", mean)
	}
}

func TestGenerateCapacities(t *testing.T) {
	p, err := Generate(NewSpec(40, 100, 0.05, 0.20), 17)
	if err != nil {
		t.Fatal(err)
	}
	s := float64(p.TotalObjectSize())
	var total float64
	for i := 0; i < p.Sites(); i++ {
		total += float64(p.Capacity(i))
	}
	mean := total / float64(p.Sites())
	// Mean capacity ≈ C·S (uniform over [C·S/2, 3C·S/2]); primaries-fit
	// adjustment can only raise it slightly.
	if mean < 0.15*s || mean > 0.3*s {
		t.Fatalf("mean capacity %v, want around %v", mean, 0.2*s)
	}
}

func TestGeneratePrimariesFit(t *testing.T) {
	// Even with absurdly small capacity ratios, primaries must fit so the
	// initial scheme is feasible.
	p, err := Generate(NewSpec(4, 80, 0.05, 0.001), 19)
	if err != nil {
		t.Fatal(err)
	}
	used := make([]int64, p.Sites())
	for k := 0; k < p.Objects(); k++ {
		used[p.Primary(k)] += p.Size(k)
	}
	for i := 0; i < p.Sites(); i++ {
		if used[i] > p.Capacity(i) {
			t.Fatalf("site %d: primaries use %d > capacity %d", i, used[i], p.Capacity(i))
		}
	}
}

func TestGenerateSingleSite(t *testing.T) {
	p, err := Generate(NewSpec(1, 5, 0.05, 0.15), 23)
	if err != nil {
		t.Fatal(err)
	}
	if p.DPrime() != 0 {
		t.Fatalf("single-site D' = %d, want 0 (all traffic local)", p.DPrime())
	}
}

func TestSpecValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no sites", func(s *Spec) { s.Sites = 0 }},
		{"no objects", func(s *Spec) { s.Objects = 0 }},
		{"negative update ratio", func(s *Spec) { s.UpdateRatio = -0.1 }},
		{"negative capacity ratio", func(s *Spec) { s.CapacityRatio = -1 }},
		{"bad read range", func(s *Spec) { s.ReadMin = 10; s.ReadMax = 5 }},
		{"bad link range", func(s *Spec) { s.LinkMin = 0 }},
		{"bad size mean", func(s *Spec) { s.SizeMean = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec := NewSpec(5, 5, 0.05, 0.15)
			tt.mutate(&spec)
			if _, err := Generate(spec, 1); err == nil {
				t.Fatal("invalid spec accepted")
			}
		})
	}
}
