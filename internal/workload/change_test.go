package workload

import (
	"testing"

	"drp/internal/core"
)

func changeBase(t *testing.T) *core.Problem {
	t.Helper()
	p, err := Generate(NewSpec(20, 40, 0.05, 0.15), 101)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestApplyChangeCounts(t *testing.T) {
	p := changeBase(t)
	next, changes, err := ApplyChange(p, ChangeSpec{Ch: 6.0, ObjectShare: 0.3, ReadShare: 0.8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 12 { // 30% of 40
		t.Fatalf("%d changes, want 12", len(changes))
	}
	readsUp, writesUp := 0, 0
	for _, c := range changes {
		switch c.Direction {
		case ReadsUp:
			readsUp++
		case WritesUp:
			writesUp++
		default:
			t.Fatalf("bad direction %v", c.Direction)
		}
	}
	if readsUp != 10 || writesUp != 2 { // 80% / 20% of 12
		t.Fatalf("readsUp=%d writesUp=%d, want 10/2", readsUp, writesUp)
	}
	if next == p {
		t.Fatal("ApplyChange returned the original problem")
	}
}

func TestApplyChangeMagnitude(t *testing.T) {
	p := changeBase(t)
	next, changes, err := ApplyChange(p, ChangeSpec{Ch: 6.0, ObjectShare: 0.25, ReadShare: 1.0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range changes {
		if c.Direction != ReadsUp {
			t.Fatal("ReadShare 1.0 yielded a write change")
		}
		before := p.TotalReads(c.Object)
		after := next.TotalReads(c.Object)
		if after-before != c.Added {
			t.Fatalf("object %d: reads grew by %d, Added says %d", c.Object, after-before, c.Added)
		}
		want := int64(6*float64(before) + 0.5)
		if c.Added != want {
			t.Fatalf("object %d: added %d, want 600%% = %d", c.Object, c.Added, want)
		}
		if next.TotalWrites(c.Object) != p.TotalWrites(c.Object) {
			t.Fatal("reads-up change altered writes")
		}
	}
}

func TestApplyChangeWritesUp(t *testing.T) {
	p := changeBase(t)
	next, changes, err := ApplyChange(p, ChangeSpec{Ch: 4.0, ObjectShare: 0.2, ReadShare: 0.0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range changes {
		if c.Direction != WritesUp {
			t.Fatal("ReadShare 0.0 yielded a read change")
		}
		grown := next.TotalWrites(c.Object) - p.TotalWrites(c.Object)
		if grown != c.Added {
			t.Fatalf("object %d: writes grew by %d, Added says %d", c.Object, grown, c.Added)
		}
		if next.TotalReads(c.Object) != p.TotalReads(c.Object) {
			t.Fatal("writes-up change altered reads")
		}
	}
}

func TestApplyChangeUntouchedObjectsUnchanged(t *testing.T) {
	p := changeBase(t)
	next, changes, err := ApplyChange(p, ChangeSpec{Ch: 6.0, ObjectShare: 0.1, ReadShare: 0.5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	changed := make(map[int]bool)
	for _, c := range changes {
		changed[c.Object] = true
	}
	for k := 0; k < p.Objects(); k++ {
		if changed[k] {
			continue
		}
		if next.TotalReads(k) != p.TotalReads(k) || next.TotalWrites(k) != p.TotalWrites(k) {
			t.Fatalf("untouched object %d changed", k)
		}
	}
}

func TestApplyChangeDeterministic(t *testing.T) {
	p := changeBase(t)
	spec := ChangeSpec{Ch: 6.0, ObjectShare: 0.3, ReadShare: 0.8}
	a, _, err := ApplyChange(p, spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ApplyChange(p, spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.DPrime() != b.DPrime() {
		t.Fatal("same seed produced different changes")
	}
}

func TestApplyChangeSortsByObject(t *testing.T) {
	p := changeBase(t)
	_, changes, err := ApplyChange(p, ChangeSpec{Ch: 2.0, ObjectShare: 0.5, ReadShare: 0.5}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(changes); i++ {
		if changes[i].Object <= changes[i-1].Object {
			t.Fatal("changes not sorted by object id")
		}
	}
}

func TestApplyChangeValidation(t *testing.T) {
	p := changeBase(t)
	bad := []ChangeSpec{
		{Ch: -1, ObjectShare: 0.1, ReadShare: 0.5},
		{Ch: 1, ObjectShare: -0.1, ReadShare: 0.5},
		{Ch: 1, ObjectShare: 1.5, ReadShare: 0.5},
		{Ch: 1, ObjectShare: 0.1, ReadShare: 2},
	}
	for _, spec := range bad {
		if _, _, err := ApplyChange(p, spec, 1); err == nil {
			t.Fatalf("invalid spec %+v accepted", spec)
		}
	}
}

func TestDirectionString(t *testing.T) {
	if ReadsUp.String() != "reads-up" || WritesUp.String() != "writes-up" {
		t.Fatal("direction strings wrong")
	}
	if Direction(9).String() == "" {
		t.Fatal("unknown direction produced empty string")
	}
}
