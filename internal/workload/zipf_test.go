package workload

import (
	"sort"
	"testing"
)

func TestGenerateZipfDimensionsAndValidity(t *testing.T) {
	p, err := GenerateZipf(NewZipfSpec(12, 40, 0.05, 0.15, 0.8), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Sites() != 12 || p.Objects() != 40 {
		t.Fatalf("dims %d×%d", p.Sites(), p.Objects())
	}
}

func TestGenerateZipfSkewsPopularity(t *testing.T) {
	p, err := GenerateZipf(NewZipfSpec(10, 100, 0.05, 0.15, 1.0), 2)
	if err != nil {
		t.Fatal(err)
	}
	totals := make([]float64, p.Objects())
	for k := range totals {
		totals[k] = float64(p.TotalReads(k))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(totals)))
	var top10, all float64
	for i, v := range totals {
		if i < 10 {
			top10 += v
		}
		all += v
	}
	// With s=1 over 100 objects, the top 10% of objects carry roughly half
	// the traffic (H(10)/H(100) ≈ 0.56); uniform workloads would carry 10%.
	if share := top10 / all; share < 0.35 {
		t.Fatalf("top-10 objects carry %.2f of reads; Zipf skew missing", share)
	}
}

func TestGenerateZipfZeroSkewIsFlat(t *testing.T) {
	p, err := GenerateZipf(NewZipfSpec(10, 50, 0.05, 0.15, 0), 3)
	if err != nil {
		t.Fatal(err)
	}
	var minT, maxT int64 = 1 << 62, 0
	for k := 0; k < p.Objects(); k++ {
		if v := p.TotalReads(k); v < minT {
			minT = v
		} else if v > maxT {
			maxT = v
		}
	}
	// Multinomial noise only: the extremes stay within a small factor.
	if maxT > 3*minT {
		t.Fatalf("skew-0 read totals range %d..%d; should be near-uniform", minT, maxT)
	}
}

func TestGenerateZipfVolumeComparableToUniform(t *testing.T) {
	z, err := GenerateZipf(NewZipfSpec(10, 50, 0.05, 0.15, 0.9), 4)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Generate(NewSpec(10, 50, 0.05, 0.15), 4)
	if err != nil {
		t.Fatal(err)
	}
	var zTotal, uTotal int64
	for k := 0; k < 50; k++ {
		zTotal += z.TotalReads(k)
		uTotal += u.TotalReads(k)
	}
	ratio := float64(zTotal) / float64(uTotal)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("Zipf volume %d vs uniform %d (ratio %.2f); should match", zTotal, uTotal, ratio)
	}
}

func TestGenerateZipfValidation(t *testing.T) {
	spec := NewZipfSpec(5, 5, 0.05, 0.15, -1)
	if _, err := GenerateZipf(spec, 1); err == nil {
		t.Fatal("negative skew accepted")
	}
	bad := NewZipfSpec(0, 5, 0.05, 0.15, 1)
	if _, err := GenerateZipf(bad, 1); err == nil {
		t.Fatal("zero sites accepted")
	}
}

func TestGenerateZipfDeterministic(t *testing.T) {
	a, err := GenerateZipf(NewZipfSpec(8, 20, 0.05, 0.15, 0.7), 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateZipf(NewZipfSpec(8, 20, 0.05, 0.15, 0.7), 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.DPrime() != b.DPrime() {
		t.Fatal("same seed produced different Zipf instances")
	}
}
