package workload

import (
	"fmt"
	"math"

	"drp/internal/core"
	"drp/internal/xrand"
)

// Direction says which side of an object's read/write pattern surged.
type Direction int

// Pattern change directions.
const (
	ReadsUp Direction = iota + 1
	WritesUp
)

func (d Direction) String() string {
	switch d {
	case ReadsUp:
		return "reads-up"
	case WritesUp:
		return "writes-up"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Change describes one object whose pattern shifted, as reported to the
// adaptive algorithm.
type Change struct {
	Object    int
	Direction Direction
	// Added is the number of new requests injected for the object.
	Added int64
}

// ChangeSpec parameterises the Section 6.3 daytime pattern shift.
//
// With the paper's running example (M=50, N=200): Ch=6.0, ObjectShare=0.3,
// ReadShare=0.8 means 30% of the objects change, 80% of those see their
// reads grow by 600% and 20% see their updates grow by 600%.
type ChangeSpec struct {
	Ch          float64 // fractional increase of the changing total (6.0 = +600%)
	ObjectShare float64 // OCh: fraction of objects whose pattern changes
	ReadShare   float64 // R: fraction of changing objects whose *reads* increase
}

func (c ChangeSpec) validate() error {
	switch {
	case c.Ch < 0:
		return fmt.Errorf("workload: negative change ratio %v", c.Ch)
	case c.ObjectShare < 0 || c.ObjectShare > 1:
		return fmt.Errorf("workload: object share %v outside [0,1]", c.ObjectShare)
	case c.ReadShare < 0 || c.ReadShare > 1:
		return fmt.Errorf("workload: read share %v outside [0,1]", c.ReadShare)
	}
	return nil
}

// ApplyChange perturbs p's read/write patterns per spec and returns the new
// problem together with the per-object change records (sorted by object).
//
// New reads are added one by one to uniformly random sites. New updates are
// split: half are spread uniformly like reads, half are clustered — assigned
// by a normal distribution whose mean is a random site and whose variance is
// M/5, simulating objects updated from a specific cluster of nodes (wrapped
// around the site ring).
func ApplyChange(p *core.Problem, spec ChangeSpec, seed uint64) (*core.Problem, []Change, error) {
	if err := spec.validate(); err != nil {
		return nil, nil, err
	}
	rng := xrand.New(seed)
	n := p.Objects()
	reads := p.ReadMatrix()
	writes := p.WriteMatrix()

	numChanged := int(spec.ObjectShare*float64(n) + 0.5)
	if numChanged > n {
		numChanged = n
	}
	perm := rng.Perm(n)
	chosen := perm[:numChanged]
	numReadsUp := int(spec.ReadShare*float64(numChanged) + 0.5)

	changes := make([]Change, 0, numChanged)
	for idx, k := range chosen {
		if idx < numReadsUp {
			added := addReads(reads, p, k, spec.Ch, rng)
			changes = append(changes, Change{Object: k, Direction: ReadsUp, Added: added})
		} else {
			added := addWrites(writes, p, k, spec.Ch, rng)
			changes = append(changes, Change{Object: k, Direction: WritesUp, Added: added})
		}
	}
	sortChanges(changes)

	next, err := p.WithPatterns(reads, writes)
	if err != nil {
		return nil, nil, err
	}
	return next, changes, nil
}

func addReads(reads [][]int64, p *core.Problem, k int, ch float64, rng *xrand.Source) int64 {
	added := int64(ch*float64(p.TotalReads(k)) + 0.5)
	m := len(reads)
	for r := int64(0); r < added; r++ {
		reads[rng.Intn(m)][k]++
	}
	return added
}

func addWrites(writes [][]int64, p *core.Problem, k int, ch float64, rng *xrand.Source) int64 {
	added := int64(ch*float64(p.TotalWrites(k)) + 0.5)
	m := len(writes)
	uniform := added / 2
	for u := int64(0); u < uniform; u++ {
		writes[rng.Intn(m)][k]++
	}
	// Clustered half: normal around a random centre, variance M/5.
	centre := float64(rng.Intn(m))
	stddev := math.Sqrt(float64(m) / 5)
	for u := uniform; u < added; u++ {
		site := int(math.Round(rng.Norm(centre, stddev)))
		site %= m
		if site < 0 {
			site += m
		}
		writes[site][k]++
	}
	return added
}

func sortChanges(changes []Change) {
	// Insertion sort by object id: change lists are short and this avoids
	// pulling in sort for a trivial key.
	for i := 1; i < len(changes); i++ {
		for j := i; j > 0 && changes[j].Object < changes[j-1].Object; j-- {
			changes[j], changes[j-1] = changes[j-1], changes[j]
		}
	}
}
