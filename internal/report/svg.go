// Package report renders experiment figures as standalone SVG line charts
// using nothing but the standard library, so a reproduction campaign can
// produce paper-style plots (drpbench -svg) without any plotting stack.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"drp/internal/experiments"
)

// Layout constants for the generated charts.
const (
	chartWidth   = 720
	chartHeight  = 440
	marginLeft   = 70
	marginRight  = 180 // room for the legend
	marginTop    = 50
	marginBottom = 55
	tickCount    = 5
)

// palette holds visually distinct series colours (looped when exceeded).
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#17becf", "#7f7f7f", "#bcbd22", "#e377c2",
}

// SVG writes the figure as a self-contained SVG document.
func SVG(fig *experiments.FigureResult, w io.Writer) error {
	if len(fig.X) == 0 || len(fig.Series) == 0 {
		return fmt.Errorf("report: figure %s has no data", fig.ID)
	}
	xMin, xMax := bounds(fig.X)
	var ys []float64
	for _, s := range fig.Series {
		ys = append(ys, s.Y...)
	}
	yMin, yMax := bounds(ys)
	if yMin > 0 {
		yMin = 0 // anchor ratio-style axes at zero when everything is positive
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	plotW := float64(chartWidth - marginLeft - marginRight)
	plotH := float64(chartHeight - marginTop - marginBottom)
	px := func(x float64) float64 { return marginLeft + (x-xMin)/(xMax-xMin)*plotW }
	py := func(y float64) float64 { return marginTop + plotH - (y-yMin)/(yMax-yMin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		chartWidth, chartHeight, chartWidth, chartHeight)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")

	// Title and axis labels.
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15" font-weight="bold">Figure %s: %s</text>`+"\n",
		marginLeft, escape(fig.ID), escape(fig.Title))
	fmt.Fprintf(&b, `<text x="%f" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, chartHeight-12, escape(fig.XLabel))
	fmt.Fprintf(&b, `<text x="18" y="%f" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 18 %f)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(fig.YLabel))

	// Gridlines and ticks.
	for t := 0; t <= tickCount; t++ {
		frac := float64(t) / tickCount
		yVal := yMin + frac*(yMax-yMin)
		y := py(yVal)
		fmt.Fprintf(&b, `<line x1="%d" y1="%f" x2="%f" y2="%f" stroke="#dddddd"/>`+"\n",
			marginLeft, y, marginLeft+plotW, y)
		fmt.Fprintf(&b, `<text x="%d" y="%f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+4, tickLabel(yVal))

		xVal := xMin + frac*(xMax-xMin)
		x := px(xVal)
		fmt.Fprintf(&b, `<line x1="%f" y1="%d" x2="%f" y2="%f" stroke="#eeeeee"/>`+"\n",
			x, marginTop, x, marginTop+plotH)
		fmt.Fprintf(&b, `<text x="%f" y="%f" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, marginTop+plotH+16, tickLabel(xVal))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%f" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, marginTop+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%f" x2="%f" y2="%f" stroke="black"/>`+"\n",
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)

	// Series lines, point markers and legend.
	for si, s := range fig.Series {
		colour := palette[si%len(palette)]
		var pts []string
		for i, y := range s.Y {
			if i >= len(fig.X) {
				break
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(fig.X[i]), py(y)))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), colour)
		for i, y := range s.Y {
			if i >= len(fig.X) {
				break
			}
			fmt.Fprintf(&b, `<circle cx="%f" cy="%f" r="3" fill="%s"/>`+"\n", px(fig.X[i]), py(y), colour)
		}
		ly := marginTop + 8 + float64(si)*18
		lx := float64(chartWidth - marginRight + 14)
		fmt.Fprintf(&b, `<line x1="%f" y1="%f" x2="%f" y2="%f" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly, lx+22, ly, colour)
		fmt.Fprintf(&b, `<text x="%f" y="%f" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+28, ly+4, escape(s.Name))
	}
	b.WriteString("</svg>\n")

	_, err := io.WriteString(w, b.String())
	return err
}

func bounds(vals []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func tickLabel(v float64) string {
	switch {
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
