package report

import (
	"bytes"
	"strings"
	"testing"

	"drp/internal/experiments"
)

func sample() *experiments.FigureResult {
	return &experiments.FigureResult{
		ID:     "3a",
		Title:  "Savings vs update <ratio> & \"stuff\"",
		XLabel: "update ratio %",
		YLabel: "% NTC savings",
		X:      []float64{1, 5, 10},
		Series: []experiments.Series{
			{Name: "SRA", Y: []float64{40, 10, 0}},
			{Name: "GRA", Y: []float64{42, 20, 6}},
		},
	}
}

func TestSVGStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := SVG(sample(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<svg", "</svg>",
		"Figure 3a",
		"update ratio %",
		"% NTC savings",
		"SRA", "GRA",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("%d polylines, want 2", got)
	}
	// 2 series × 3 points = 6 markers.
	if got := strings.Count(out, "<circle"); got != 6 {
		t.Errorf("%d markers, want 6", got)
	}
}

func TestSVGEscapesMarkup(t *testing.T) {
	var buf bytes.Buffer
	if err := SVG(sample(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "<ratio>") {
		t.Fatal("unescaped markup in title")
	}
	if !strings.Contains(out, "&lt;ratio&gt;") {
		t.Fatal("escaped title missing")
	}
}

func TestSVGRejectsEmptyFigure(t *testing.T) {
	if err := SVG(&experiments.FigureResult{ID: "1a"}, &bytes.Buffer{}); err == nil {
		t.Fatal("empty figure accepted")
	}
}

func TestSVGHandlesConstantSeries(t *testing.T) {
	fig := &experiments.FigureResult{
		ID: "x", Title: "flat", XLabel: "x", YLabel: "y",
		X:      []float64{2, 2},
		Series: []experiments.Series{{Name: "c", Y: []float64{5, 5}}},
	}
	var buf bytes.Buffer
	if err := SVG(fig, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatal("degenerate ranges produced NaN coordinates")
	}
}

func TestSVGManySeriesColourLoop(t *testing.T) {
	fig := sample()
	for i := 0; i < 12; i++ {
		fig.Series = append(fig.Series, experiments.Series{
			Name: strings.Repeat("s", i+1),
			Y:    []float64{float64(i), float64(i + 1), float64(i + 2)},
		})
	}
	var buf bytes.Buffer
	if err := SVG(fig, &buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "<polyline"); got != 14 {
		t.Fatalf("%d polylines, want 14", got)
	}
}
