// Package ga provides the genetic-search building blocks shared by the GRA
// and AGRA solvers: fitness-proportionate selection by stochastic remainder,
// roulette wheels, one- and two-point crossover over bitsets, and sparse
// bit-flip mutation.
package ga

import (
	"math"

	"drp/internal/bitset"
	"drp/internal/xrand"
)

// Individual pairs a chromosome with its cached evaluation. Fitness must be
// non-negative for the proportionate selection operators.
type Individual struct {
	Bits    *bitset.Set
	Cost    int64
	Fitness float64
}

// Clone deep-copies the individual.
func (ind Individual) Clone() Individual {
	return Individual{Bits: ind.Bits.Clone(), Cost: ind.Cost, Fitness: ind.Fitness}
}

// Best returns the index of the highest-fitness individual, or -1 for an
// empty population.
func Best(pop []Individual) int {
	best := -1
	for i := range pop {
		if best < 0 || pop[i].Fitness > pop[best].Fitness {
			best = i
		}
	}
	return best
}

// Worst returns the index of the lowest-fitness individual, or -1 for an
// empty population.
func Worst(pop []Individual) int {
	worst := -1
	for i := range pop {
		if worst < 0 || pop[i].Fitness < pop[worst].Fitness {
			worst = i
		}
	}
	return worst
}

// MeanFitness returns the average fitness of the population.
func MeanFitness(pop []Individual) float64 {
	if len(pop) == 0 {
		return 0
	}
	total := 0.0
	for i := range pop {
		total += pop[i].Fitness
	}
	return total / float64(len(pop))
}

// StochasticRemainder allocates count offspring from pool proportionally to
// fitness using the stochastic remainder technique: each individual first
// receives floor(count·f_i/Σf) deterministic copies; the remaining slots are
// filled by a roulette wheel over the fractional parts. This bounds the
// sampling error that plain roulette-wheel selection (Holland's SGA)
// suffers from. If all fitness values are zero the selection is uniform.
//
// Returned individuals are deep copies, safe for in-place variation.
func StochasticRemainder(pool []Individual, count int, rng *xrand.Source) []Individual {
	out := make([]Individual, 0, count)
	if len(pool) == 0 || count == 0 {
		return out
	}
	total := 0.0
	for i := range pool {
		total += pool[i].Fitness
	}
	if total <= 0 {
		for len(out) < count {
			out = append(out, pool[rng.Intn(len(pool))].Clone())
		}
		return out
	}
	fracs := make([]float64, len(pool))
	for i := range pool {
		expected := float64(count) * pool[i].Fitness / total
		copies := int(expected)
		fracs[i] = expected - float64(copies)
		for c := 0; c < copies && len(out) < count; c++ {
			out = append(out, pool[i].Clone())
		}
	}
	for len(out) < count {
		idx := RouletteIndex(fracs, rng)
		out = append(out, pool[idx].Clone())
		// Each fractional part buys at most one extra offspring.
		fracs[idx] = 0
	}
	return out
}

// RouletteIndex picks an index with probability proportional to the
// non-negative weights. NaN and negative weights are treated as zero — a
// NaN in the running total would otherwise poison every comparison and
// silently bias the pick to the last index. All-zero (or otherwise
// degenerate) totals fall back to a uniform pick.
func RouletteIndex(weights []float64, rng *xrand.Source) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 || math.IsInf(total, 0) {
		return rng.Intn(len(weights))
	}
	spin := rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w > 0 {
			acc += w
		}
		if spin < acc {
			return i
		}
	}
	return len(weights) - 1
}

// CrossSpan is the bit range [From, To) exchanged by a crossover, reported
// so domain-specific repair (gene validity in GRA) knows which genes were
// cut.
type CrossSpan struct {
	From, To int
}

// TwoPoint performs the paper's two-point crossover on a and b in place:
// two cut points are drawn, and with equal probability either the segment
// between them or the two outer fractions are swapped. It returns the
// swapped spans (one or two).
func TwoPoint(a, b *bitset.Set, rng *xrand.Source) []CrossSpan {
	n := a.Len()
	c1 := rng.Intn(n + 1)
	c2 := rng.Intn(n + 1)
	if c1 > c2 {
		c1, c2 = c2, c1
	}
	if rng.Bool(0.5) {
		a.SwapRange(b, c1, c2)
		return []CrossSpan{{From: c1, To: c2}}
	}
	a.SwapRange(b, 0, c1)
	a.SwapRange(b, c2, n)
	return []CrossSpan{{From: 0, To: c1}, {From: c2, To: n}}
}

// OnePoint performs single-point crossover in place, swapping with equal
// probability the left or the right part — the AGRA variant. It returns the
// swapped span.
func OnePoint(a, b *bitset.Set, rng *xrand.Source) CrossSpan {
	n := a.Len()
	cut := rng.Intn(n + 1)
	if rng.Bool(0.5) {
		a.SwapRange(b, 0, cut)
		return CrossSpan{From: 0, To: cut}
	}
	a.SwapRange(b, cut, n)
	return CrossSpan{From: cut, To: n}
}

// MutateBits visits each bit index with independent probability rate and
// calls flip for it. Sparse rates use geometric skipping so the cost is
// proportional to the number of flipped bits, not the chromosome length.
func MutateBits(length int, rate float64, rng *xrand.Source, flip func(i int)) {
	if rate <= 0 || length == 0 {
		return
	}
	if rate >= 1 {
		for i := 0; i < length; i++ {
			flip(i)
		}
		return
	}
	i := nextGeometric(rate, length, rng)
	for i < length {
		flip(i)
		i += 1 + nextGeometric(rate, length, rng)
	}
}

// nextGeometric returns the number of Bernoulli(rate) failures before the
// next success, clamped to limit (any sample >= limit ends the caller's
// skip loop, so the clamp preserves the distribution exactly).
func nextGeometric(rate float64, limit int, rng *xrand.Source) int {
	// Inverse-CDF sampling: floor(ln U / ln(1-p)).
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	g := math.Log(u) / math.Log(1-rate)
	// For rates below ~2^-53, 1-rate rounds to 1 and the sample is -Inf
	// (ln U / +0); near rate 1 it can exceed the int range. A raw int
	// conversion of either is platform-defined and once produced negative
	// skip counts, panicking the bitset. Anything non-finite, negative or
	// past the limit means "no flip in range".
	if !(g >= 0) || g >= float64(limit) {
		return limit
	}
	return int(g)
}
