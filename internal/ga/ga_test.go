package ga

import (
	"math"
	"testing"

	"drp/internal/bitset"
	"drp/internal/xrand"
)

func mkpop(fitness ...float64) []Individual {
	pop := make([]Individual, len(fitness))
	for i, f := range fitness {
		pop[i] = Individual{Bits: bitset.New(8), Fitness: f}
		pop[i].Bits.Set(i % 8)
	}
	return pop
}

func TestBestWorstMean(t *testing.T) {
	pop := mkpop(0.2, 0.9, 0.5)
	if Best(pop) != 1 {
		t.Fatalf("Best = %d, want 1", Best(pop))
	}
	if Worst(pop) != 0 {
		t.Fatalf("Worst = %d, want 0", Worst(pop))
	}
	if m := MeanFitness(pop); math.Abs(m-(0.2+0.9+0.5)/3) > 1e-12 {
		t.Fatalf("MeanFitness = %v", m)
	}
	if Best(nil) != -1 || Worst(nil) != -1 || MeanFitness(nil) != 0 {
		t.Fatal("empty population edge cases broken")
	}
}

func TestCloneIsDeep(t *testing.T) {
	ind := Individual{Bits: bitset.New(4), Cost: 7, Fitness: 0.5}
	c := ind.Clone()
	c.Bits.Set(0)
	if ind.Bits.Test(0) {
		t.Fatal("clone shares bits with original")
	}
	if c.Cost != 7 || c.Fitness != 0.5 {
		t.Fatal("clone lost metadata")
	}
}

func TestStochasticRemainderDeterministicPart(t *testing.T) {
	// With fitness 3:1 and 4 slots, expected copies are 3 and 1 exactly —
	// no roulette needed, so the allocation is deterministic.
	pop := mkpop(3, 1)
	rng := xrand.New(1)
	out := StochasticRemainder(pop, 4, rng)
	if len(out) != 4 {
		t.Fatalf("selected %d, want 4", len(out))
	}
	counts := map[float64]int{}
	for _, ind := range out {
		counts[ind.Fitness]++
	}
	if counts[3] != 3 || counts[1] != 1 {
		t.Fatalf("counts = %v, want 3×f3, 1×f1", counts)
	}
}

func TestStochasticRemainderProportionality(t *testing.T) {
	pop := mkpop(0.7, 0.2, 0.1)
	rng := xrand.New(2)
	counts := make([]int, 3)
	const rounds = 2000
	for r := 0; r < rounds; r++ {
		for _, ind := range StochasticRemainder(pop, 10, rng) {
			switch ind.Fitness {
			case 0.7:
				counts[0]++
			case 0.2:
				counts[1]++
			case 0.1:
				counts[2]++
			}
		}
	}
	total := float64(rounds * 10)
	for i, want := range []float64{0.7, 0.2, 0.1} {
		got := float64(counts[i]) / total
		if math.Abs(got-want) > 0.02 {
			t.Errorf("individual %d selected %.3f of slots, want ~%.1f", i, got, want)
		}
	}
}

func TestStochasticRemainderZeroFitness(t *testing.T) {
	pop := mkpop(0, 0, 0)
	out := StochasticRemainder(pop, 6, xrand.New(3))
	if len(out) != 6 {
		t.Fatalf("selected %d, want 6", len(out))
	}
}

func TestStochasticRemainderEmpty(t *testing.T) {
	if out := StochasticRemainder(nil, 5, xrand.New(1)); len(out) != 0 {
		t.Fatal("selection from empty pool returned individuals")
	}
	if out := StochasticRemainder(mkpop(1), 0, xrand.New(1)); len(out) != 0 {
		t.Fatal("zero-count selection returned individuals")
	}
}

func TestStochasticRemainderReturnsClones(t *testing.T) {
	pop := mkpop(1, 1)
	out := StochasticRemainder(pop, 2, xrand.New(4))
	out[0].Bits.Set(7)
	if pop[0].Bits.Test(7) && pop[1].Bits.Test(7) {
		t.Fatal("selection returned references, not clones")
	}
}

func TestRouletteIndex(t *testing.T) {
	rng := xrand.New(5)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[RouletteIndex([]float64{1, 2, 7}, rng)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / 30000
		if math.Abs(got-want) > 0.02 {
			t.Errorf("index %d frequency %.3f, want ~%.1f", i, got, want)
		}
	}
	// All-zero weights: uniform fallback, must not panic.
	idx := RouletteIndex([]float64{0, 0}, rng)
	if idx < 0 || idx > 1 {
		t.Fatalf("zero-weight roulette index %d", idx)
	}
}

func TestTwoPointPreservesMultiset(t *testing.T) {
	rng := xrand.New(6)
	for trial := 0; trial < 200; trial++ {
		a, b := bitset.New(100), bitset.New(100)
		for i := 0; i < 100; i++ {
			if rng.Bool(0.5) {
				a.Set(i)
			}
			if rng.Bool(0.5) {
				b.Set(i)
			}
		}
		wantPerBit := make([]int, 100)
		for i := 0; i < 100; i++ {
			if a.Test(i) {
				wantPerBit[i]++
			}
			if b.Test(i) {
				wantPerBit[i]++
			}
		}
		spans := TwoPoint(a, b, rng)
		if len(spans) == 0 || len(spans) > 2 {
			t.Fatalf("TwoPoint returned %d spans", len(spans))
		}
		for i := 0; i < 100; i++ {
			got := 0
			if a.Test(i) {
				got++
			}
			if b.Test(i) {
				got++
			}
			if got != wantPerBit[i] {
				t.Fatalf("trial %d: bit %d multiset changed", trial, i)
			}
		}
	}
}

func TestOnePointPreservesMultiset(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 200; trial++ {
		a, b := bitset.New(40), bitset.New(40)
		for i := 0; i < 40; i++ {
			if rng.Bool(0.3) {
				a.Set(i)
			}
			if rng.Bool(0.7) {
				b.Set(i)
			}
		}
		before := a.Count() + b.Count()
		span := OnePoint(a, b, rng)
		if span.From < 0 || span.To > 40 {
			t.Fatalf("span %+v out of range", span)
		}
		if a.Count()+b.Count() != before {
			t.Fatal("one-point crossover changed total bit count")
		}
	}
}

func TestMutateBitsRate(t *testing.T) {
	rng := xrand.New(8)
	const length, trials = 1000, 200
	rate := 0.01
	flips := 0
	for trial := 0; trial < trials; trial++ {
		MutateBits(length, rate, rng, func(i int) {
			if i < 0 || i >= length {
				t.Fatalf("flip index %d out of range", i)
			}
			flips++
		})
	}
	mean := float64(flips) / trials
	if math.Abs(mean-10) > 1.5 {
		t.Fatalf("mean flips per chromosome %v, want ~10", mean)
	}
}

func TestMutateBitsEdgeRates(t *testing.T) {
	count := 0
	MutateBits(100, 0, xrand.New(9), func(i int) { count++ })
	if count != 0 {
		t.Fatal("rate 0 flipped bits")
	}
	MutateBits(100, 1, xrand.New(9), func(i int) { count++ })
	if count != 100 {
		t.Fatalf("rate 1 flipped %d bits, want 100", count)
	}
	MutateBits(0, 0.5, xrand.New(9), func(i int) { t.Fatal("flip on empty chromosome") })
}

func TestMutateBitsTinyRate(t *testing.T) {
	// Regression: for rates below ~2^-53, ln(1-rate) evaluates to +0 and
	// the geometric sample was ln(U)/+0 = -Inf, whose int conversion
	// produced a negative skip and a bitset panic in flip.
	rng := xrand.New(11)
	for _, rate := range []float64{1e-300, math.SmallestNonzeroFloat64, 1e-20} {
		for trial := 0; trial < 100; trial++ {
			MutateBits(64, rate, rng, func(i int) {
				if i < 0 || i >= 64 {
					t.Fatalf("rate %g: flip index %d out of range", rate, i)
				}
			})
		}
	}
}

func TestNextGeometricClamped(t *testing.T) {
	rng := xrand.New(12)
	for i := 0; i < 1000; i++ {
		// Degenerate rate: the ideal sample is infinite, the clamp must
		// return exactly limit ("no flip in range").
		if g := nextGeometric(1e-300, 50, rng); g != 50 {
			t.Fatalf("tiny-rate sample %d, want clamp to 50", g)
		}
		if g := nextGeometric(0.5, 50, rng); g < 0 || g > 50 {
			t.Fatalf("sample %d outside [0, 50]", g)
		}
	}
}

func TestRouletteIndexDegenerateWeights(t *testing.T) {
	rng := xrand.New(13)
	// A NaN (or negative) total used to make every comparison false and
	// silently return the last index; now degenerate-only weights fall
	// back to a uniform pick.
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[RouletteIndex([]float64{math.NaN(), -1, math.NaN()}, rng)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("degenerate weights never picked index %d", i)
		}
	}
	// A NaN weight must not absorb probability mass from valid ones.
	for i := 0; i < 1000; i++ {
		if idx := RouletteIndex([]float64{math.NaN(), 1, math.Inf(-1)}, rng); idx != 1 {
			t.Fatalf("the only valid weight lost the roulette to index %d", idx)
		}
	}
}

func TestMutateBitsVisitsAscendingDistinct(t *testing.T) {
	rng := xrand.New(10)
	for trial := 0; trial < 50; trial++ {
		last := -1
		MutateBits(500, 0.05, rng, func(i int) {
			if i <= last {
				t.Fatalf("flip order not strictly ascending: %d after %d", i, last)
			}
			last = i
		})
	}
}
