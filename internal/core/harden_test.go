package core_test

// Hardening tests: malformed codec input and magnitude overflows must come
// back as errors, never as panics or silently wrapped arithmetic. These pin
// the guards the fuzz targets (fuzz_test.go) lean on.

import (
	"math"
	"strings"
	"testing"

	"drp/internal/core"
	"drp/internal/netsim"
)

// readProblem runs ReadProblem on a literal JSON document and reports the
// error, failing the test on panic.
func readProblem(t *testing.T, doc string) error {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("ReadProblem panicked: %v", r)
		}
	}()
	_, err := core.ReadProblem(strings.NewReader(doc))
	return err
}

func TestReadProblemMalformedInputErrors(t *testing.T) {
	cases := map[string]string{
		"zero sites": `{"sites":0,"objects":0,"sizes":[],"capacities":[],` +
			`"primaries":[],"reads":[],"writes":[],"dist":[]}`,
		"negative sites": `{"sites":-3,"objects":1,"sizes":[1],"capacities":[],` +
			`"primaries":[0],"reads":[],"writes":[],"dist":[]}`,
		"objects header mismatch": `{"sites":1,"objects":2,"sizes":[1],"capacities":[5],` +
			`"primaries":[0],"reads":[[1]],"writes":[[0]],"dist":[[0]]}`,
		"ragged dist rows": `{"sites":2,"objects":1,"sizes":[1],"capacities":[5,5],` +
			`"primaries":[0],"reads":[[1],[1]],"writes":[[0],[0]],"dist":[[0,5],[]]}`,
		"short dist row checked before symmetric partner": `{"sites":2,"objects":1,"sizes":[1],` +
			`"capacities":[5,5],"primaries":[0],"reads":[[1],[1]],"writes":[[0],[0]],"dist":[[0,5],[7]]}`,
		"non-zero self distance": `{"sites":2,"objects":1,"sizes":[1],"capacities":[5,5],` +
			`"primaries":[0],"reads":[[1],[1]],"writes":[[0],[0]],"dist":[[3,5],[5,0]]}`,
		"asymmetric distances": `{"sites":2,"objects":1,"sizes":[1],"capacities":[5,5],` +
			`"primaries":[0],"reads":[[1],[1]],"writes":[[0],[0]],"dist":[[0,5],[6,0]]}`,
		"negative distance": `{"sites":2,"objects":1,"sizes":[1],"capacities":[5,5],` +
			`"primaries":[0],"reads":[[1],[1]],"writes":[[0],[0]],"dist":[[0,-5],[-5,0]]}`,
		"missing read rows": `{"sites":2,"objects":1,"sizes":[1],"capacities":[5,5],` +
			`"primaries":[0],"reads":[[1]],"writes":[[0],[0]],"dist":[[0,5],[5,0]]}`,
	}
	for name, doc := range cases {
		if err := readProblem(t, doc); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNewProblemRejectsOverflowingMagnitudes(t *testing.T) {
	dm := netsim.NewDistMatrix(2)
	dm.Set(0, 1, 10)
	big := int64(math.MaxInt64 / 2)
	cases := map[string]core.Config{
		"sizes overflow": {
			Sizes:      []int64{big, big, big},
			Capacities: []int64{big, big},
			Primaries:  []int{0, 0, 1},
			Reads:      [][]int64{{0, 0, 0}, {0, 0, 0}},
			Writes:     [][]int64{{0, 0, 0}, {0, 0, 0}},
			Dist:       dm,
		},
		"read totals overflow": {
			Sizes:      []int64{1},
			Capacities: []int64{5, 5},
			Primaries:  []int{0},
			Reads:      [][]int64{{big}, {big}},
			Writes:     [][]int64{{0}, {0}},
			Dist:       dm,
		},
		"traffic volume overflows cost range": {
			Sizes:      []int64{math.MaxInt64 / 4},
			Capacities: []int64{math.MaxInt64 / 2, 1},
			Primaries:  []int{0},
			Reads:      [][]int64{{100}, {100}},
			Writes:     [][]int64{{1}, {1}},
			Dist:       dm,
		},
	}
	for name, cfg := range cases {
		if _, err := core.NewProblem(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestReadSchemeMalformedInputErrors pins the scheme decoder's guards
// against shape mismatches, range violations and duplicates.
func TestReadSchemeMalformedInputErrors(t *testing.T) {
	p := tinyProblem(t)
	cases := map[string]string{
		"wrong object count": `{"replicators":[[0]]}`,
		"out of range site":  `{"replicators":[[0,9],[1]]}`,
		"negative site":      `{"replicators":[[-1],[1]]}`,
		"duplicate replica":  `{"replicators":[[0,1,1],[1]]}`,
	}
	for name, doc := range cases {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s: ReadScheme panicked: %v", name, r)
				}
			}()
			if _, err := core.ReadScheme(p, strings.NewReader(doc)); err == nil {
				t.Errorf("%s: accepted", name)
			}
		}()
	}
}

func tinyProblem(t *testing.T) *core.Problem {
	t.Helper()
	dm := netsim.NewDistMatrix(2)
	dm.Set(0, 1, 3)
	p, err := core.NewProblem(core.Config{
		Sizes:      []int64{1, 2},
		Capacities: []int64{10, 10},
		Primaries:  []int{0, 1},
		Reads:      [][]int64{{1, 2}, {3, 4}},
		Writes:     [][]int64{{0, 1}, {1, 0}},
		Dist:       dm,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}
