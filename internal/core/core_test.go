package core

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"drp/internal/bitset"
	"drp/internal/netsim"
)

// fixture builds a hand-checkable 3-site, 2-object instance:
//
//	C = [[0,2,3],[2,0,1],[3,1,0]]
//	o = [2,3], SP = [0,2], capacities = [5,5,5]
//	reads  = [[4,1],[5,2],[0,6]]
//	writes = [[1,0],[0,1],[2,0]]
//
// D′ per object: V′_0 = 32, V′_1 = 18, D′ = 50.
func fixture(t *testing.T) *Problem {
	t.Helper()
	dm := netsim.NewDistMatrix(3)
	dm.Set(0, 1, 2)
	dm.Set(0, 2, 3)
	dm.Set(1, 2, 1)
	p, err := NewProblem(Config{
		Sizes:      []int64{2, 3},
		Capacities: []int64{5, 5, 5},
		Primaries:  []int{0, 2},
		Reads:      [][]int64{{4, 1}, {5, 2}, {0, 6}},
		Writes:     [][]int64{{1, 0}, {0, 1}, {2, 0}},
		Dist:       dm,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProblemAccessors(t *testing.T) {
	p := fixture(t)
	if p.Sites() != 3 || p.Objects() != 2 {
		t.Fatalf("dims = %d×%d, want 3×2", p.Sites(), p.Objects())
	}
	if p.Size(1) != 3 || p.Capacity(2) != 5 || p.Primary(1) != 2 {
		t.Fatal("accessor mismatch")
	}
	if p.Reads(1, 0) != 5 || p.Writes(2, 0) != 2 {
		t.Fatal("read/write accessor mismatch")
	}
	if p.TotalReads(0) != 9 || p.TotalWrites(0) != 3 {
		t.Fatalf("totals for object 0 = %d reads, %d writes; want 9, 3", p.TotalReads(0), p.TotalWrites(0))
	}
	if p.TotalObjectSize() != 5 {
		t.Fatalf("TotalObjectSize = %d, want 5", p.TotalObjectSize())
	}
	if p.Cost(1, 2) != 1 || p.Cost(2, 1) != 1 {
		t.Fatal("cost accessor mismatch")
	}
}

func TestDPrimeHandComputed(t *testing.T) {
	p := fixture(t)
	if p.VPrime(0) != 32 {
		t.Errorf("V'_0 = %d, want 32", p.VPrime(0))
	}
	if p.VPrime(1) != 18 {
		t.Errorf("V'_1 = %d, want 18", p.VPrime(1))
	}
	if p.DPrime() != 50 {
		t.Errorf("D' = %d, want 50", p.DPrime())
	}
}

func TestInitialSchemeCostEqualsDPrime(t *testing.T) {
	p := fixture(t)
	s := NewScheme(p)
	if got := s.Cost(); got != p.DPrime() {
		t.Fatalf("primaries-only cost = %d, want D' = %d", got, p.DPrime())
	}
	if got := s.Savings(); got != 0 {
		t.Fatalf("primaries-only savings = %v, want 0", got)
	}
	if s.TotalReplicas() != 0 {
		t.Fatalf("primaries-only TotalReplicas = %d, want 0", s.TotalReplicas())
	}
}

func TestCostAfterReplicationHandComputed(t *testing.T) {
	p := fixture(t)
	s := NewScheme(p)
	if err := s.Add(1, 0); err != nil {
		t.Fatal(err)
	}
	// Object 0 replicated at {0,1}: V_0 = 0 + 3·2·2 + (0 + 2·2·3) = 24.
	if got := s.ObjectCost(0); got != 24 {
		t.Fatalf("V_0 = %d, want 24", got)
	}
	if got := s.Cost(); got != 42 {
		t.Fatalf("D = %d, want 42", got)
	}
	if got := s.Savings(); math.Abs(got-16) > 1e-12 {
		t.Fatalf("savings = %v%%, want 16%%", got)
	}
}

func TestBenefitHandComputed(t *testing.T) {
	p := fixture(t)
	// Replicating object 0 at site 1: B = (5·2·2 + 0 − 3·2·2)/2 = 4.
	if got := p.Benefit(1, 0, p.Cost(1, 0)); got != 4 {
		t.Fatalf("B_0(1) = %v, want 4", got)
	}
	// The realised cost drop matches: D' − D = 50 − 42 = 8 = B·o_0.
	s := NewScheme(p)
	if err := s.Add(1, 0); err != nil {
		t.Fatal(err)
	}
	if drop := p.DPrime() - s.Cost(); drop != 8 {
		t.Fatalf("cost drop = %d, want 8", drop)
	}
}

func TestEstimateHandComputed(t *testing.T) {
	p := fixture(t)
	// E_0(1) with degree 2: num = 9+0−3+5·5/2 = 18.5; propWeight(1) = 3/4;
	// den = 0.75·2 = 1.5 → 12.333…
	got := p.Estimate(1, 0, 2)
	if math.Abs(got-18.5/1.5) > 1e-9 {
		t.Fatalf("E_0(1) = %v, want %v", got, 18.5/1.5)
	}
	// Degree is clamped to at least 1.
	if p.Estimate(1, 0, 0) != p.Estimate(1, 0, 1) {
		t.Fatal("degree 0 not clamped to 1")
	}
	// Higher replica degree must lower the benefit estimate.
	if p.Estimate(1, 0, 3) >= p.Estimate(1, 0, 2) {
		t.Fatal("estimate not decreasing in replica degree")
	}
}

func TestNewProblemValidation(t *testing.T) {
	dm := netsim.NewDistMatrix(2)
	dm.Set(0, 1, 1)
	valid := Config{
		Sizes:      []int64{1},
		Capacities: []int64{2, 2},
		Primaries:  []int{0},
		Reads:      [][]int64{{1}, {1}},
		Writes:     [][]int64{{0}, {0}},
		Dist:       dm,
	}
	if _, err := NewProblem(valid); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil dist", func(c *Config) { c.Dist = nil }},
		{"no objects", func(c *Config) { c.Sizes = nil; c.Primaries = nil }},
		{"zero size", func(c *Config) { c.Sizes = []int64{0} }},
		{"negative capacity", func(c *Config) { c.Capacities = []int64{-1, 2} }},
		{"primaries overflow site", func(c *Config) { c.Capacities = []int64{0, 2} }},
		{"capacity count", func(c *Config) { c.Capacities = []int64{2} }},
		{"primary range", func(c *Config) { c.Primaries = []int{5} }},
		{"primary count", func(c *Config) { c.Primaries = []int{0, 1} }},
		{"reads rows", func(c *Config) { c.Reads = [][]int64{{1}} }},
		{"reads cols", func(c *Config) { c.Reads = [][]int64{{1, 2}, {1}} }},
		{"negative reads", func(c *Config) { c.Reads = [][]int64{{-1}, {1}} }},
		{"negative writes", func(c *Config) { c.Writes = [][]int64{{0}, {-2}} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := valid
			tt.mutate(&cfg)
			if _, err := NewProblem(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestSchemeAddRemove(t *testing.T) {
	p := fixture(t)
	s := NewScheme(p)
	if !s.Has(0, 0) || !s.Has(2, 1) {
		t.Fatal("primaries not placed")
	}
	if err := s.Add(0, 0); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate add error = %v", err)
	}
	if err := s.Remove(0, 0); !errors.Is(err, ErrPrimary) {
		t.Fatalf("primary remove error = %v", err)
	}
	if err := s.Remove(1, 0); !errors.Is(err, ErrAbsent) {
		t.Fatalf("absent remove error = %v", err)
	}
	if err := s.Add(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(1, 1); err != nil {
		t.Fatal(err)
	}
	// Site 1 now uses 5 of 5: nothing else fits.
	if s.Free(1) != 0 {
		t.Fatalf("Free(1) = %d, want 0", s.Free(1))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(1, 1); err != nil {
		t.Fatal(err)
	}
	if s.Used(1) != 2 {
		t.Fatalf("Used(1) = %d after remove, want 2", s.Used(1))
	}
}

func TestSchemeCapacityEnforced(t *testing.T) {
	p := fixture(t)
	s := NewScheme(p)
	if err := s.Add(1, 1); err != nil { // size 3, free 5
		t.Fatal(err)
	}
	if err := s.Add(1, 1); !errors.Is(err, ErrDuplicate) {
		t.Fatal("duplicate accepted")
	}
	// Free is 2; object 1 (size 3) must not fit again elsewhere than free room.
	s2 := NewScheme(p)
	if err := s2.Add(0, 1); err != nil { // site0: primary o0 uses 2, adding 3 = 5, fits
		t.Fatal(err)
	}
	if err := s2.Add(0, 1); !errors.Is(err, ErrDuplicate) {
		t.Fatal("duplicate accepted")
	}
}

func TestReplicatorsAndDegree(t *testing.T) {
	p := fixture(t)
	s := NewScheme(p)
	if err := s.Add(1, 0); err != nil {
		t.Fatal(err)
	}
	got := s.Replicators(0)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Replicators(0) = %v, want [0 1]", got)
	}
	if s.ReplicaDegree(0) != 2 || s.ReplicaDegree(1) != 1 {
		t.Fatal("replica degree mismatch")
	}
	if s.TotalReplicas() != 1 {
		t.Fatalf("TotalReplicas = %d, want 1", s.TotalReplicas())
	}
}

func TestSchemeCloneAndEqual(t *testing.T) {
	p := fixture(t)
	s := NewScheme(p)
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	if err := c.Add(1, 0); err != nil {
		t.Fatal(err)
	}
	if s.Equal(c) {
		t.Fatal("mutating clone affected equality with original")
	}
	if s.Has(1, 0) {
		t.Fatal("mutating clone affected original")
	}
}

func TestSchemeFromBits(t *testing.T) {
	p := fixture(t)
	s := NewScheme(p)
	if err := s.Add(1, 0); err != nil {
		t.Fatal(err)
	}
	rebuilt, err := SchemeFromBits(p, s.Bits())
	if err != nil {
		t.Fatal(err)
	}
	if !rebuilt.Equal(s) || rebuilt.Used(1) != 2 {
		t.Fatal("SchemeFromBits round-trip mismatch")
	}

	// Missing primary bit must be rejected.
	bits := s.Bits()
	bits.Clear(0*p.Objects() + 0)
	if _, err := SchemeFromBits(p, bits); err == nil {
		t.Fatal("missing primary accepted")
	}

	// Over-capacity must be rejected.
	bits2 := s.Bits()
	bits2.Set(1*p.Objects() + 1)
	bits2.Set(0*p.Objects() + 1)
	// site 1 now has o0+o1 = 5 (fits); make site 0 overflow: it has o0=2, o1=3 → 5 fits too.
	// Force overflow by also filling site 2 beyond 5: o1 primary(3) + o0(2) = 5 fits.
	// Instead shrink via wrong length check:
	if _, err := SchemeFromBits(p, bits2); err != nil {
		t.Fatalf("valid full placement rejected: %v", err)
	}
	if _, err := SchemeFromBits(p, bitset.New(5)); err == nil {
		t.Fatal("wrong-length bitset accepted")
	}
}

func TestVPrimeMatchesObjectCostOfInitialScheme(t *testing.T) {
	p := fixture(t)
	s := NewScheme(p)
	for k := 0; k < p.Objects(); k++ {
		if got := s.ObjectCost(k); got != p.VPrime(k) {
			t.Fatalf("ObjectCost(%d) = %d, want V' = %d", k, got, p.VPrime(k))
		}
	}
}

func TestNearestTable(t *testing.T) {
	p := fixture(t)
	s := NewScheme(p)
	nt := NewNearestTable(s)
	// Only primaries exist: nearest of object 0 is site 0 everywhere.
	if nt.Nearest(1, 0) != 0 || nt.Dist(1, 0) != 2 {
		t.Fatalf("nearest(1,0) = %d@%d, want 0@2", nt.Nearest(1, 0), nt.Dist(1, 0))
	}
	if nt.Nearest(2, 1) != 2 || nt.Dist(2, 1) != 0 {
		t.Fatal("self-nearest for primary site broken")
	}
	if err := s.Add(1, 0); err != nil {
		t.Fatal(err)
	}
	nt.Add(1, 0)
	if nt.Nearest(2, 0) != 1 || nt.Dist(2, 0) != 1 {
		t.Fatalf("nearest(2,0) after add = %d@%d, want 1@1", nt.Nearest(2, 0), nt.Dist(2, 0))
	}
	if nt.Nearest(0, 0) != 0 || nt.Dist(0, 0) != 0 {
		t.Fatal("primary site's own nearest changed")
	}
	if err := s.Remove(1, 0); err != nil {
		t.Fatal(err)
	}
	nt.Remove(s, 0)
	if nt.Nearest(2, 0) != 0 || nt.Dist(2, 0) != 3 {
		t.Fatalf("nearest(2,0) after remove = %d@%d, want 0@3", nt.Nearest(2, 0), nt.Dist(2, 0))
	}
}

func TestWithPatterns(t *testing.T) {
	p := fixture(t)
	reads := p.ReadMatrix()
	writes := p.WriteMatrix()
	reads[1][0] += 10
	next, err := p.WithPatterns(reads, writes)
	if err != nil {
		t.Fatal(err)
	}
	if next.TotalReads(0) != p.TotalReads(0)+10 {
		t.Fatal("WithPatterns did not apply new reads")
	}
	if p.Reads(1, 0) != 5 {
		t.Fatal("WithPatterns mutated the original problem")
	}
	if next.Sites() != p.Sites() || next.DPrime() == 0 {
		t.Fatal("WithPatterns lost structure")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	p := fixture(t)
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := ReadProblem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Sites() != p.Sites() || p2.Objects() != p.Objects() || p2.DPrime() != p.DPrime() {
		t.Fatal("problem round-trip mismatch")
	}
	for i := 0; i < p.Sites(); i++ {
		for k := 0; k < p.Objects(); k++ {
			if p2.Reads(i, k) != p.Reads(i, k) || p2.Writes(i, k) != p.Writes(i, k) {
				t.Fatal("pattern round-trip mismatch")
			}
		}
	}

	s := NewScheme(p)
	if err := s.Add(1, 0); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := ReadScheme(p2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Cost() != s.Cost() || !s2.Has(1, 0) {
		t.Fatal("scheme round-trip mismatch")
	}
}

func TestReadProblemRejectsGarbage(t *testing.T) {
	if _, err := ReadProblem(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadProblem(bytes.NewReader([]byte(`{"sites":2,"objects":1,"dist":[[0,1]]}`))); err == nil {
		t.Fatal("truncated distance matrix accepted")
	}
}

// twoSiteDist builds a minimal valid 2-site distance matrix for tests.
func twoSiteDist() *netsim.DistMatrix {
	dm := netsim.NewDistMatrix(2)
	dm.Set(0, 1, 1)
	return dm
}
