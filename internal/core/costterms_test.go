package core

import (
	"testing"

	"drp/internal/netsim"
	"drp/internal/xrand"
)

// TestCostTermsSumEqualsCost pins the decomposition invariant: eq. 4's
// three terms always add back to D, on the hand-checked fixture and on
// randomized placements over a generated instance.
func TestCostTermsSumEqualsCost(t *testing.T) {
	p := fixture(t)
	s := NewScheme(p)
	checkTerms(t, s)
	if err := s.Add(1, 0); err != nil {
		t.Fatal(err)
	}
	checkTerms(t, s)
	if err := s.Add(1, 1); err != nil {
		t.Fatal(err)
	}
	checkTerms(t, s)
}

func TestCostTermsPrimariesOnly(t *testing.T) {
	p := fixture(t)
	terms := NewScheme(p).CostTerms()
	if terms.Total() != p.DPrime() {
		t.Fatalf("primaries-only terms sum to %d, want D' = %d", terms.Total(), p.DPrime())
	}
	// With no extra replicas every non-primary site reads remotely and
	// ships writes; only the primaries pay update fan-in.
	if terms.ReadNTC == 0 || terms.WriteNTC == 0 {
		t.Fatalf("degenerate decomposition: %+v", terms)
	}
}

func TestCostTermsRandomizedSchemes(t *testing.T) {
	p := randomTermProblem(t, 9, 14, 3)
	rng := xrand.New(42)
	for trial := 0; trial < 25; trial++ {
		s := NewScheme(p)
		for tries := 0; tries < 30; tries++ {
			i, k := rng.Intn(p.Sites()), rng.Intn(p.Objects())
			_ = s.Add(i, k) // capacity overflows just skip the replica
		}
		checkTerms(t, s)
	}
}

func checkTerms(t *testing.T, s *Scheme) {
	t.Helper()
	terms := s.CostTerms()
	if got, want := terms.Total(), s.Cost(); got != want {
		t.Fatalf("CostTerms %+v sum to %d, Cost() = %d", terms, got, want)
	}
	if terms.ReadNTC < 0 || terms.WriteNTC < 0 || terms.UpdateNTC < 0 {
		t.Fatalf("negative term: %+v", terms)
	}
}

// randomTermProblem generates a small dense instance without importing the
// workload package (which would cycle).
func randomTermProblem(t *testing.T, m, n int, maxRate int64) *Problem {
	t.Helper()
	rng := xrand.New(7)
	dm := netsim.NewDistMatrix(m)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			dm.Set(i, j, 1+int64(rng.Intn(9)))
		}
	}
	cfg := Config{
		Sizes:      make([]int64, n),
		Capacities: make([]int64, m),
		Primaries:  make([]int, n),
		Reads:      make([][]int64, m),
		Writes:     make([][]int64, m),
		Dist:       dm,
	}
	for k := 0; k < n; k++ {
		cfg.Sizes[k] = 1 + int64(rng.Intn(4))
		cfg.Primaries[k] = rng.Intn(m)
	}
	for i := 0; i < m; i++ {
		cfg.Capacities[i] = 40
		cfg.Reads[i] = make([]int64, n)
		cfg.Writes[i] = make([]int64, n)
		for k := 0; k < n; k++ {
			cfg.Reads[i][k] = int64(rng.Intn(int(maxRate) + 1))
			cfg.Writes[i][k] = int64(rng.Intn(int(maxRate) + 1))
		}
	}
	p, err := NewProblem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
