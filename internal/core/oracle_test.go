package core_test

// Oracle tests: the production cost evaluator (which uses replicator-list
// gathering and a min-distance shortcut) is checked against a literal,
// unoptimised transcription of eq. 4 from the paper, over randomly
// generated instances and schemes.

import (
	"testing"

	"drp/internal/core"
	"drp/internal/workload"
	"drp/internal/xrand"
)

// naiveCost is eq. 4, written as directly as possible.
func naiveCost(p *core.Problem, s *core.Scheme) int64 {
	var d int64
	for i := 0; i < p.Sites(); i++ {
		for k := 0; k < p.Objects(); k++ {
			sp := p.Primary(k)
			if s.Has(i, k) {
				// Σ_x w_k(x) · o_k · C(i, SP_k)
				var wTot int64
				for x := 0; x < p.Sites(); x++ {
					wTot += p.Writes(x, k)
				}
				d += wTot * p.Size(k) * p.Cost(i, sp)
				continue
			}
			// r_k(i)·o_k·min{C(i,j) : X_jk = 1} + w_k(i)·o_k·C(i,SP_k)
			minC := int64(-1)
			for j := 0; j < p.Sites(); j++ {
				if s.Has(j, k) {
					if c := p.Cost(i, j); minC < 0 || c < minC {
						minC = c
					}
				}
			}
			d += p.Reads(i, k)*p.Size(k)*minC + p.Writes(i, k)*p.Size(k)*p.Cost(i, sp)
		}
	}
	return d
}

// randomScheme adds random replicas until several placements in a row fail.
func randomScheme(p *core.Problem, rng *xrand.Source) *core.Scheme {
	s := core.NewScheme(p)
	failures := 0
	for failures < 50 {
		if s.Add(rng.Intn(p.Sites()), rng.Intn(p.Objects())) != nil {
			failures++
		} else {
			failures = 0
		}
	}
	return s
}

func TestEvaluatorMatchesNaiveEq4(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		p, err := workload.Generate(workload.NewSpec(8, 12, 0.05, 0.3), seed)
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(seed * 977)
		for trial := 0; trial < 5; trial++ {
			s := randomScheme(p, rng)
			want := naiveCost(p, s)
			if got := s.Cost(); got != want {
				t.Fatalf("seed %d trial %d: Cost = %d, naive eq.4 = %d", seed, trial, got, want)
			}
			ev := core.NewEvaluator(p)
			if got := ev.Cost(s.Bits()); got != want {
				t.Fatalf("seed %d trial %d: Evaluator.Cost = %d, naive = %d", seed, trial, got, want)
			}
		}
	}
}

func TestCostIsSumOfObjectCosts(t *testing.T) {
	p, err := workload.Generate(workload.NewSpec(10, 15, 0.05, 0.2), 3)
	if err != nil {
		t.Fatal(err)
	}
	s := randomScheme(p, xrand.New(17))
	var sum int64
	for k := 0; k < p.Objects(); k++ {
		sum += s.ObjectCost(k)
	}
	if got := s.Cost(); got != sum {
		t.Fatalf("Cost = %d, Σ ObjectCost = %d", got, sum)
	}
}

func TestBenefitBoundsActualCostDrop(t *testing.T) {
	// Placing a replica with benefit B must drop the global cost by at
	// least B·o_k: the local view ignores other sites' read improvements,
	// which are always non-negative.
	p, err := workload.Generate(workload.NewSpec(9, 10, 0.05, 0.4), 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(31)
	s := core.NewScheme(p)
	nt := core.NewNearestTable(s)
	for trial := 0; trial < 200; trial++ {
		i, k := rng.Intn(p.Sites()), rng.Intn(p.Objects())
		if s.Has(i, k) || s.Free(i) < p.Size(k) {
			continue
		}
		benefit := p.Benefit(i, k, nt.Dist(i, k))
		before := s.Cost()
		if err := s.Add(i, k); err != nil {
			t.Fatal(err)
		}
		nt.Add(i, k)
		after := s.Cost()
		drop := float64(before - after)
		if drop < benefit*float64(p.Size(k))-1e-9 {
			t.Fatalf("replica (%d,%d): drop %v < B·o = %v", i, k, drop, benefit*float64(p.Size(k)))
		}
	}
}

func TestSavingsNeverExceeds100Percent(t *testing.T) {
	p, err := workload.Generate(workload.NewSpec(6, 8, 0.02, 0.5), 9)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(77)
	for trial := 0; trial < 20; trial++ {
		s := randomScheme(p, rng)
		if sv := s.Savings(); sv > 100 {
			t.Fatalf("savings %v%% > 100%%", sv)
		}
	}
}

func TestNearestTableMatchesBruteForce(t *testing.T) {
	p, err := workload.Generate(workload.NewSpec(12, 10, 0.05, 0.3), 21)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	s := core.NewScheme(p)
	nt := core.NewNearestTable(s)
	check := func() {
		t.Helper()
		for i := 0; i < p.Sites(); i++ {
			for k := 0; k < p.Objects(); k++ {
				var want int64 = -1
				for j := 0; j < p.Sites(); j++ {
					if s.Has(j, k) {
						if c := p.Cost(i, j); want < 0 || c < want {
							want = c
						}
					}
				}
				if got := nt.Dist(i, k); got != want {
					t.Fatalf("nearest dist (%d,%d) = %d, want %d", i, k, got, want)
				}
				if !s.Has(nt.Nearest(i, k), k) {
					t.Fatalf("nearest site (%d,%d) = %d does not hold the object", i, k, nt.Nearest(i, k))
				}
			}
		}
	}
	check()
	var placed [][2]int
	for trial := 0; trial < 60; trial++ {
		i, k := rng.Intn(p.Sites()), rng.Intn(p.Objects())
		if err := s.Add(i, k); err == nil {
			nt.Add(i, k)
			placed = append(placed, [2]int{i, k})
		}
	}
	check()
	for _, ik := range placed[:len(placed)/2] {
		if err := s.Remove(ik[0], ik[1]); err == nil {
			nt.Remove(s, ik[1])
		}
	}
	check()
}
