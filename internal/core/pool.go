package core

import (
	"sync/atomic"

	"drp/internal/bitset"
	"drp/internal/parallel"
)

// EvalPool fans cost evaluations out across a fixed set of per-goroutine
// Evaluators. An Evaluator is not safe for concurrent use (it reuses
// per-object scratch buffers), so the pool owns one per worker and hands it
// to whichever task that worker picks up. Results are always written by
// task index, so the reduction order — and therefore every downstream
// decision — is identical at any worker count.
//
// The pool itself must not be shared between concurrently running batches;
// one pool per solver run is the intended shape.
type EvalPool struct {
	workers int
	evs     []*Evaluator
}

// NewEvalPool returns a pool for p. parallelism follows the solvers'
// convention: 0 means GOMAXPROCS, 1 is fully serial (evaluations run inline
// on the caller's goroutine), anything larger is an explicit worker count.
func NewEvalPool(p *Problem, parallelism int) *EvalPool {
	w := parallel.Workers(parallelism)
	evs := make([]*Evaluator, w)
	for i := range evs {
		evs[i] = NewEvaluator(p)
	}
	return &EvalPool{workers: w, evs: evs}
}

// SetMeter attaches one shared evaluation counter to every worker's
// evaluator (see Evaluator.SetMeter); nil detaches.
func (pl *EvalPool) SetMeter(meter *atomic.Int64) {
	for _, ev := range pl.evs {
		ev.SetMeter(meter)
	}
}

// Workers returns the pool's worker count.
func (pl *EvalPool) Workers() int { return pl.workers }

// Evaluator returns worker 0's evaluator for inline, single-chromosome use
// on the caller's goroutine (never concurrently with Each).
func (pl *EvalPool) Evaluator() *Evaluator { return pl.evs[0] }

// Each runs fn(ev, i) for every i in [0, n) across the pool, handing each
// invocation a worker-private Evaluator. fn must write its result into an
// index-addressed slot and must not touch shared mutable state.
func (pl *EvalPool) Each(n int, fn func(ev *Evaluator, i int)) {
	parallel.ForWorker(n, pl.workers, func(w, i int) { fn(pl.evs[w], i) })
}

// Costs evaluates each placement matrix and returns their NTCs in input
// order.
func (pl *EvalPool) Costs(xs []*bitset.Set) []int64 {
	out := make([]int64, len(xs))
	pl.Each(len(xs), func(ev *Evaluator, i int) { out[i] = ev.Cost(xs[i]) })
	return out
}
