// Package core defines the Data Replication Problem (DRP) of Loukopoulos &
// Ahmad (ICDCS 2000): the problem instance (sites, objects, read/write
// patterns, primary copies, capacities, transfer costs), replication
// schemes, and the exact network-transfer-cost (NTC) model of Section 2 —
// the objective function D (eq. 4), the greedy benefit value B (eq. 5) and
// the adaptive replica-benefit estimator E (eq. 6).
//
// Everything else in this repository (the SRA greedy, the GRA and AGRA
// genetic algorithms, baselines, the cluster simulator and the experiment
// harness) is expressed in terms of this package.
package core

import (
	"fmt"

	"drp/internal/netsim"
)

// Problem is an immutable DRP instance.
//
// Indices: sites are 0..M-1, objects are 0..N-1. Read/write counts are laid
// out site-major: reads[i*N+k] is r_k(i), the number of reads issued by site
// i for object k during the measurement period.
type Problem struct {
	m, n    int
	size    []int64 // o_k, object sizes in storage units
	cap     []int64 // s(i), site capacities in storage units
	primary []int   // SP_k, primary site per object
	reads   []int64 // site-major r_k(i)
	writes  []int64 // site-major w_k(i)
	dist    *netsim.DistMatrix

	// Derived caches, computed once in NewProblem.
	totalReads  []int64   // Σ_i r_k(i) per object
	totalWrites []int64   // Σ_i w_k(i) per object
	propWeight  []float64 // Σ_x C(i,x) / mean row sum, per site (eq. 6 denominator)
	dPrime      int64     // D of the primaries-only allocation
	vPrime      []int64   // per-object NTC of the primaries-only allocation
}

// Config carries the raw inputs of a DRP instance into NewProblem.
type Config struct {
	Sizes      []int64            // o_k for each of the N objects (positive)
	Capacities []int64            // s(i) for each of the M sites (non-negative)
	Primaries  []int              // SP_k for each object
	Reads      [][]int64          // Reads[i][k] = r_k(i)
	Writes     [][]int64          // Writes[i][k] = w_k(i)
	Dist       *netsim.DistMatrix // validated all-pairs costs C(i,j)
}

// NewProblem validates cfg and builds an instance with all derived caches.
func NewProblem(cfg Config) (*Problem, error) {
	if cfg.Dist == nil {
		return nil, fmt.Errorf("core: nil distance matrix")
	}
	m := cfg.Dist.Sites()
	n := len(cfg.Sizes)
	if n == 0 {
		return nil, fmt.Errorf("core: no objects")
	}
	if len(cfg.Capacities) != m {
		return nil, fmt.Errorf("core: %d capacities for %d sites", len(cfg.Capacities), m)
	}
	if len(cfg.Primaries) != n {
		return nil, fmt.Errorf("core: %d primaries for %d objects", len(cfg.Primaries), n)
	}
	if len(cfg.Reads) != m || len(cfg.Writes) != m {
		return nil, fmt.Errorf("core: read/write matrices must have %d site rows", m)
	}
	p := &Problem{
		m:       m,
		n:       n,
		size:    append([]int64(nil), cfg.Sizes...),
		cap:     append([]int64(nil), cfg.Capacities...),
		primary: append([]int(nil), cfg.Primaries...),
		reads:   make([]int64, m*n),
		writes:  make([]int64, m*n),
		dist:    cfg.Dist,
	}
	for k, sz := range p.size {
		if sz <= 0 {
			return nil, fmt.Errorf("core: object %d has non-positive size %d", k, sz)
		}
	}
	for i, c := range p.cap {
		if c < 0 {
			return nil, fmt.Errorf("core: site %d has negative capacity %d", i, c)
		}
	}
	// Σ o_k must fit int64: every storage-accounting quantity (per-site
	// usage, primary loads) is bounded by it, so this one checked sum makes
	// all later size arithmetic overflow-free.
	var sizeSum int64
	for k, sz := range p.size {
		var ok bool
		if sizeSum, ok = addNonNeg(sizeSum, sz); !ok {
			return nil, fmt.Errorf("core: object sizes overflow int64 at object %d", k)
		}
	}
	primaryUse := make([]int64, m)
	for k, sp := range p.primary {
		if sp < 0 || sp >= m {
			return nil, fmt.Errorf("core: object %d has out-of-range primary %d", k, sp)
		}
		primaryUse[sp] += p.size[k]
	}
	// The primary-copy constraint forces X[SP_k][k] = 1, so an instance
	// whose primaries overflow a site admits no feasible scheme at all.
	for i, use := range primaryUse {
		if use > p.cap[i] {
			return nil, fmt.Errorf("core: infeasible instance: primaries at site %d need %d units, capacity is %d", i, use, p.cap[i])
		}
	}
	for i := 0; i < m; i++ {
		if len(cfg.Reads[i]) != n || len(cfg.Writes[i]) != n {
			return nil, fmt.Errorf("core: site %d read/write rows must have %d objects", i, n)
		}
		for k := 0; k < n; k++ {
			r, w := cfg.Reads[i][k], cfg.Writes[i][k]
			if r < 0 || w < 0 {
				return nil, fmt.Errorf("core: negative read/write count at site %d object %d", i, k)
			}
			p.reads[i*n+k] = r
			p.writes[i*n+k] = w
		}
	}
	if err := p.buildCaches(); err != nil {
		return nil, err
	}
	return p, nil
}

// addNonNeg returns a+b and whether the sum of the two non-negative values
// stayed within int64.
func addNonNeg(a, b int64) (int64, bool) {
	s := a + b
	return s, s >= a
}

// mulNonNeg returns a·b and whether the product of the two non-negative
// values stayed within int64.
func mulNonNeg(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	prod := a * b
	return prod, prod/a == b && prod >= 0
}

func (p *Problem) buildCaches() error {
	p.totalReads = make([]int64, p.n)
	p.totalWrites = make([]int64, p.n)
	for i := 0; i < p.m; i++ {
		row := p.reads[i*p.n : (i+1)*p.n]
		wrow := p.writes[i*p.n : (i+1)*p.n]
		for k := 0; k < p.n; k++ {
			var ok1, ok2 bool
			p.totalReads[k], ok1 = addNonNeg(p.totalReads[k], row[k])
			p.totalWrites[k], ok2 = addNonNeg(p.totalWrites[k], wrow[k])
			if !ok1 || !ok2 {
				return fmt.Errorf("core: read/write totals for object %d overflow int64", k)
			}
		}
	}
	// Worst-case NTC bound: any scheme's eq. 4 cost is at most
	// Σ_k (1 + Rtot_k + (M+1)·Wtot_k)·o_k·maxC (reads from the farthest
	// replica, every site a replicator paying the full update fan-in, plus
	// one object-transfer term covering migration accounting). If that bound
	// fits int64, every cost the evaluators, delta evaluator and cluster
	// simulator can compute fits too — so they never need per-term checks.
	var maxC int64
	for i := 0; i < p.m; i++ {
		for _, c := range p.dist.Row(i) {
			if c > maxC {
				maxC = c
			}
		}
	}
	var bound int64
	for k := 0; k < p.n; k++ {
		fanIn, ok := mulNonNeg(int64(p.m)+1, p.totalWrites[k])
		if !ok {
			return errMagnitude(k)
		}
		traffic, ok := addNonNeg(p.totalReads[k], fanIn)
		if !ok {
			return errMagnitude(k)
		}
		traffic, ok = addNonNeg(traffic, 1)
		if !ok {
			return errMagnitude(k)
		}
		vol, ok := mulNonNeg(traffic, p.size[k])
		if !ok {
			return errMagnitude(k)
		}
		cost, ok := mulNonNeg(vol, maxC)
		if !ok {
			return errMagnitude(k)
		}
		if bound, ok = addNonNeg(bound, cost); !ok {
			return errMagnitude(k)
		}
	}
	mean := p.dist.MeanRowSum()
	p.propWeight = make([]float64, p.m)
	for i := 0; i < p.m; i++ {
		if mean > 0 {
			p.propWeight[i] = float64(p.dist.RowSum(i)) / mean
		} else {
			// Degenerate single-site network: neutral weight.
			p.propWeight[i] = 1
		}
	}
	p.vPrime = make([]int64, p.n)
	for k := 0; k < p.n; k++ {
		sp := p.primary[k]
		var v int64
		for i := 0; i < p.m; i++ {
			c := p.dist.At(i, sp)
			v += (p.reads[i*p.n+k] + p.writes[i*p.n+k]) * p.size[k] * c
		}
		p.vPrime[k] = v
		p.dPrime += v
	}
	return nil
}

func errMagnitude(k int) error {
	return fmt.Errorf("core: traffic volume of object %d overflows the int64 cost range", k)
}

// Sites returns M, the number of sites.
func (p *Problem) Sites() int { return p.m }

// Objects returns N, the number of objects.
func (p *Problem) Objects() int { return p.n }

// Size returns o_k.
func (p *Problem) Size(k int) int64 { return p.size[k] }

// Capacity returns s(i).
func (p *Problem) Capacity(i int) int64 { return p.cap[i] }

// Primary returns SP_k.
func (p *Problem) Primary(k int) int { return p.primary[k] }

// Reads returns r_k(i).
func (p *Problem) Reads(i, k int) int64 { return p.reads[i*p.n+k] }

// Writes returns w_k(i).
func (p *Problem) Writes(i, k int) int64 { return p.writes[i*p.n+k] }

// TotalReads returns Σ_i r_k(i).
func (p *Problem) TotalReads(k int) int64 { return p.totalReads[k] }

// TotalWrites returns Σ_i w_k(i), the update fan-in each replica of k pays.
func (p *Problem) TotalWrites(k int) int64 { return p.totalWrites[k] }

// Cost returns the per-unit transfer cost C(i,j).
func (p *Problem) Cost(i, j int) int64 { return p.dist.At(i, j) }

// Dist exposes the distance matrix (read-only by convention).
func (p *Problem) Dist() *netsim.DistMatrix { return p.dist }

// DPrime returns the NTC of the initial allocation in which each object
// exists only at its primary site. It is the paper's normaliser for both
// the GRA fitness and the reported "% NTC savings".
func (p *Problem) DPrime() int64 { return p.dPrime }

// VPrime returns the per-object NTC of the primaries-only allocation.
func (p *Problem) VPrime(k int) int64 { return p.vPrime[k] }

// TotalObjectSize returns Σ_k o_k.
func (p *Problem) TotalObjectSize() int64 {
	var total int64
	for _, sz := range p.size {
		total += sz
	}
	return total
}

// WithPatterns returns a copy of p sharing the network, sizes, capacities
// and primaries but carrying new read/write patterns. It is how the
// adaptive experiments (Section 6.3) model "the daytime pattern changed":
// same infrastructure, new demand.
func (p *Problem) WithPatterns(reads, writes [][]int64) (*Problem, error) {
	caps := append([]int64(nil), p.cap...)
	return NewProblem(Config{
		Sizes:      p.size,
		Capacities: caps,
		Primaries:  p.primary,
		Reads:      reads,
		Writes:     writes,
		Dist:       p.dist,
	})
}

// ReadMatrix returns a fresh [][]int64 copy of the read pattern, for use
// with WithPatterns-style mutation.
func (p *Problem) ReadMatrix() [][]int64 { return p.matrixCopy(p.reads) }

// WriteMatrix returns a fresh [][]int64 copy of the write pattern.
func (p *Problem) WriteMatrix() [][]int64 { return p.matrixCopy(p.writes) }

func (p *Problem) matrixCopy(flat []int64) [][]int64 {
	out := make([][]int64, p.m)
	for i := 0; i < p.m; i++ {
		out[i] = append([]int64(nil), flat[i*p.n:(i+1)*p.n]...)
	}
	return out
}
