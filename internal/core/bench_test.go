package core_test

// BenchmarkDeltaVsFullEval quantifies the delta evaluator's payoff: a
// single-replica move costed incrementally (one object's terms) versus a
// from-scratch eq. 4 evaluation of the whole scheme. The ratio is the
// speedup the hill climber and the AGRA micro-GAs bank on, and it should
// grow with the object count — the delta path's work is O(M) per move while
// the full path is O(M·N).

import (
	"fmt"
	"testing"

	"drp/internal/core"
	"drp/internal/workload"
	"drp/internal/xrand"
)

// benchMoves pre-computes distinct replica positions addable from the
// pristine primaries-only scheme. The measured loops toggle them in order,
// so every pass through the list alternates between adding and removing the
// whole set — always valid, regardless of how many passes b.N takes.
func benchMoves(b *testing.B, p *core.Problem, max int) [][2]int {
	b.Helper()
	rng := xrand.New(99)
	s := core.NewScheme(p)
	moves := make([][2]int, 0, max)
	failures := 0
	for len(moves) < max && failures < 50 {
		i, k := rng.Intn(p.Sites()), rng.Intn(p.Objects())
		if err := s.Add(i, k); err != nil {
			failures++
			continue
		}
		failures = 0
		moves = append(moves, [2]int{i, k})
	}
	if len(moves) == 0 {
		b.Fatal("no addable positions on the benchmark instance")
	}
	return moves
}

func benchProblem(b *testing.B, m, n int) *core.Problem {
	b.Helper()
	p, err := workload.Generate(workload.NewSpec(m, n, 0.05, 0.25), 17)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkDeltaVsFullEval(b *testing.B) {
	for _, size := range []struct{ m, n int }{{10, 20}, {20, 50}, {40, 100}} {
		p := benchProblem(b, size.m, size.n)
		moves := benchMoves(b, p, 256)

		b.Run(fmt.Sprintf("delta/M%d_N%d", size.m, size.n), func(b *testing.B) {
			s := core.NewScheme(p)
			d := core.NewDeltaEvaluator(s)
			var sink int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mv := moves[i%len(moves)]
				if s.Has(mv[0], mv[1]) {
					if err := d.Remove(mv[0], mv[1]); err != nil {
						b.Fatal(err)
					}
				} else {
					if err := d.Add(mv[0], mv[1]); err != nil {
						b.Fatal(err)
					}
				}
				sink += d.Cost()
			}
			_ = sink
		})

		b.Run(fmt.Sprintf("full/M%d_N%d", size.m, size.n), func(b *testing.B) {
			s := core.NewScheme(p)
			ev := core.NewEvaluator(p)
			var sink int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mv := moves[i%len(moves)]
				var err error
				if s.Has(mv[0], mv[1]) {
					err = s.Remove(mv[0], mv[1])
				} else {
					err = s.Add(mv[0], mv[1])
				}
				if err != nil {
					b.Fatal(err)
				}
				sink += ev.Cost(s.Bits())
			}
			_ = sink
		})
	}
}
