package core

// NearestTable maintains SN_k(i) — for every (site, object) pair, the
// nearest site currently holding a replica of the object — together with the
// corresponding distance. The paper's replication policy stores exactly this
// two-field record at every site; SRA consults and incrementally updates it
// after each placement.
type NearestTable struct {
	p *Problem
	// site[i*N+k] = SN_k(i); dist[i*N+k] = C(i, SN_k(i)).
	site []int32
	dist []int64
}

// NewNearestTable builds the table for the scheme's current placements in
// O(M · Σ_k |R_k|).
func NewNearestTable(s *Scheme) *NearestTable {
	p := s.p
	t := &NearestTable{
		p:    p,
		site: make([]int32, p.m*p.n),
		dist: make([]int64, p.m*p.n),
	}
	for k := 0; k < p.n; k++ {
		t.recomputeObject(s, k)
	}
	return t
}

// Nearest returns SN_k(i).
func (t *NearestTable) Nearest(i, k int) int { return int(t.site[i*t.p.n+k]) }

// Dist returns C(i, SN_k(i)).
func (t *NearestTable) Dist(i, k int) int64 { return t.dist[i*t.p.n+k] }

// Add updates the table after a replica of object k is placed at site j:
// every site whose current nearest replica is farther than j switches to j.
// O(M).
func (t *NearestTable) Add(j, k int) {
	n := t.p.n
	row := t.p.dist.Row(j)
	for i := 0; i < t.p.m; i++ {
		if d := row[i]; d < t.dist[i*n+k] {
			t.dist[i*n+k] = d
			t.site[i*n+k] = int32(j)
		}
	}
}

// Remove updates the table after the replica of object k at site j is
// dropped, by recomputing the object's column against the scheme (which must
// already reflect the removal).
func (t *NearestTable) Remove(s *Scheme, k int) {
	t.recomputeObject(s, k)
}

// RankReplicas orders an object's replica sites for a reader at site
// from: ascending transfer cost C(from, j) with ties broken by the lower
// site index — the failover order eq. 4's min C(i,j) induces. Sites for
// which inView returns false (departed from the current membership view,
// or otherwise ineligible) are skipped entirely rather than ranked last,
// so the order over the surviving sites is deterministic and identical
// to ranking the restricted view directly. A nil inView keeps every
// site. The reader's own site is ranked like any other; callers serving
// locally should check Holds first.
func RankReplicas(p *Problem, from int, replicas []int, inView func(int) bool) []int {
	ranked := make([]int, 0, len(replicas))
	for _, j := range replicas {
		if j < 0 || j >= p.m {
			continue
		}
		if inView != nil && !inView(j) {
			continue
		}
		ranked = append(ranked, j)
	}
	row := p.dist.Row(from)
	sortReplicas(ranked, row)
	return ranked
}

// sortReplicas is an insertion sort by (distance, site index) — replica
// sets are tiny, and stability of the index tie-break is what makes the
// failover order reproducible.
func sortReplicas(sites []int, row []int64) {
	for i := 1; i < len(sites); i++ {
		j := sites[i]
		x := i - 1
		for x >= 0 && (row[sites[x]] > row[j] || (row[sites[x]] == row[j] && sites[x] > j)) {
			sites[x+1] = sites[x]
			x--
		}
		sites[x+1] = j
	}
}

func (t *NearestTable) recomputeObject(s *Scheme, k int) {
	p := t.p
	repl := s.Replicators(k)
	for i := 0; i < p.m; i++ {
		row := p.dist.Row(i)
		best := int32(repl[0])
		bestD := row[repl[0]]
		for _, j := range repl[1:] {
			if d := row[j]; d < bestD {
				bestD = d
				best = int32(j)
			}
		}
		t.site[i*p.n+k] = best
		t.dist[i*p.n+k] = bestD
	}
}
