package core

// DeltaEvaluator maintains a scheme's cost incrementally: adding or
// removing one replica of object k only changes object k's share of D, so
// the exact new cost is computable in O(M·|R_k|) instead of re-evaluating
// the full O(M·Σ|R_k|) objective. Local-search baselines and what-if
// analyses use it; its results are asserted equal to the full evaluator in
// tests.
type DeltaEvaluator struct {
	p      *Problem
	scheme *Scheme
	ev     *Evaluator
	// objCost caches V_k per object; cost is their sum.
	objCost []int64
	cost    int64
	// scratch replicator buffer.
	repl []int32
}

// NewDeltaEvaluator wraps the scheme (not copied: mutations must go
// through the evaluator's Add/Remove so the cache stays consistent).
func NewDeltaEvaluator(s *Scheme) *DeltaEvaluator {
	d := &DeltaEvaluator{
		p:       s.p,
		scheme:  s,
		ev:      NewEvaluator(s.p),
		objCost: make([]int64, s.p.n),
	}
	for k := 0; k < s.p.n; k++ {
		d.objCost[k] = d.objectCost(k)
		d.cost += d.objCost[k]
	}
	return d
}

// Scheme returns the underlying scheme.
func (d *DeltaEvaluator) Scheme() *Scheme { return d.scheme }

// Cost returns the current exact NTC.
func (d *DeltaEvaluator) Cost() int64 { return d.cost }

// AddDelta returns the cost change of placing a replica of k at site i
// without applying it. Returns 0, false if the placement is invalid.
func (d *DeltaEvaluator) AddDelta(i, k int) (int64, bool) {
	if d.scheme.Has(i, k) || d.scheme.Free(i) < d.p.size[k] {
		return 0, false
	}
	after := d.objectCostWith(k, i, true)
	return after - d.objCost[k], true
}

// RemoveDelta returns the cost change of dropping the replica of k at site
// i without applying it. Returns 0, false if the removal is invalid.
func (d *DeltaEvaluator) RemoveDelta(i, k int) (int64, bool) {
	if !d.scheme.Has(i, k) || d.p.primary[k] == i {
		return 0, false
	}
	after := d.objectCostWith(k, i, false)
	return after - d.objCost[k], true
}

// Add applies the placement and updates the cached cost.
func (d *DeltaEvaluator) Add(i, k int) error {
	if err := d.scheme.Add(i, k); err != nil {
		return err
	}
	d.refresh(k)
	return nil
}

// Remove applies the removal and updates the cached cost.
func (d *DeltaEvaluator) Remove(i, k int) error {
	if err := d.scheme.Remove(i, k); err != nil {
		return err
	}
	d.refresh(k)
	return nil
}

func (d *DeltaEvaluator) refresh(k int) {
	next := d.objectCost(k)
	d.cost += next - d.objCost[k]
	d.objCost[k] = next
}

func (d *DeltaEvaluator) objectCost(k int) int64 {
	d.repl = d.repl[:0]
	for i := 0; i < d.p.m; i++ {
		if d.scheme.Has(i, k) {
			d.repl = append(d.repl, int32(i))
		}
	}
	return d.ev.ObjectCost(k, d.repl)
}

// objectCostWith computes V_k as if the replica at site i were present
// (add=true) or absent (add=false), without mutating the scheme.
func (d *DeltaEvaluator) objectCostWith(k, i int, add bool) int64 {
	d.repl = d.repl[:0]
	for j := 0; j < d.p.m; j++ {
		has := d.scheme.Has(j, k)
		if j == i {
			has = add
		}
		if has {
			d.repl = append(d.repl, int32(j))
		}
	}
	return d.ev.ObjectCost(k, d.repl)
}
