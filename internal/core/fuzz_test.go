package core_test

// Native fuzz targets for the codec layer. The decoders face arbitrary
// bytes; the contract pinned here is "error or a fully valid value, never a
// panic", plus encode/decode round-tripping for accepted inputs.

import (
	"bytes"
	"strings"
	"testing"

	"drp/internal/core"
	"drp/internal/netsim"
)

func FuzzReadProblem(f *testing.F) {
	f.Add([]byte(`{"sites":2,"objects":2,"sizes":[1,2],"capacities":[10,10],` +
		`"primaries":[0,1],"reads":[[1,2],[3,4]],"writes":[[0,1],[1,0]],"dist":[[0,3],[3,0]]}`))
	f.Add([]byte(`{"sites":0,"objects":0,"sizes":[],"capacities":[],"primaries":[],"reads":[],"writes":[],"dist":[]}`))
	f.Add([]byte(`{"sites":2,"objects":1,"sizes":[1],"capacities":[5,5],` +
		`"primaries":[0],"reads":[[1],[1]],"writes":[[0],[0]],"dist":[[0,5],[7]]}`))
	f.Add([]byte(`{"sites":-3}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := core.ReadProblem(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted instances must be fully coherent: the primaries-only
		// scheme validates and the cached normaliser is consistent.
		if p.DPrime() < 0 {
			t.Fatalf("accepted instance has negative D′ %d", p.DPrime())
		}
		if err := core.NewScheme(p).Validate(); err != nil {
			t.Fatalf("primaries-only scheme invalid on accepted instance: %v", err)
		}
		var buf bytes.Buffer
		if err := p.Encode(&buf); err != nil {
			t.Fatalf("accepted instance does not re-encode: %v", err)
		}
		q, err := core.ReadProblem(&buf)
		if err != nil {
			t.Fatalf("re-encoded instance rejected: %v", err)
		}
		if q.Sites() != p.Sites() || q.Objects() != p.Objects() || q.DPrime() != p.DPrime() {
			t.Fatalf("round trip drifted: %d×%d D′=%d became %d×%d D′=%d",
				p.Sites(), p.Objects(), p.DPrime(), q.Sites(), q.Objects(), q.DPrime())
		}
	})
}

// fuzzProblem is the fixed instance FuzzReadScheme decodes against.
func fuzzProblem(t testing.TB) *core.Problem {
	t.Helper()
	dm := netsim.NewDistMatrix(3)
	dm.Set(0, 1, 3)
	dm.Set(0, 2, 5)
	dm.Set(1, 2, 4)
	p, err := core.NewProblem(core.Config{
		Sizes:      []int64{1, 2},
		Capacities: []int64{10, 4, 2},
		Primaries:  []int{0, 1},
		Reads:      [][]int64{{1, 2}, {3, 4}, {5, 6}},
		Writes:     [][]int64{{0, 1}, {1, 0}, {2, 2}},
		Dist:       dm,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func FuzzReadScheme(f *testing.F) {
	f.Add([]byte(`{"replicators":[[0],[1]]}`))
	f.Add([]byte(`{"replicators":[[0,1],[1,2]]}`))
	f.Add([]byte(`{"replicators":[[0,9],[1]]}`))
	f.Add([]byte(`{"replicators":[[0,1,1],[1]]}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p := fuzzProblem(t)
		s, err := core.ReadScheme(p, strings.NewReader(string(data)))
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted scheme invalid: %v", err)
		}
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			t.Fatalf("accepted scheme does not re-encode: %v", err)
		}
		r, err := core.ReadScheme(p, &buf)
		if err != nil {
			t.Fatalf("re-encoded scheme rejected: %v", err)
		}
		if !r.Equal(s) {
			t.Fatal("scheme round trip drifted")
		}
	})
}
