package core

import (
	"sync/atomic"

	"drp/internal/bitset"
)

// This file implements the object transfer cost model of Section 2.2.
//
// For a replication scheme X, the total network transfer cost (eq. 4) is
//
//	D = Σ_i Σ_k (1−X_ik)·[ r_k(i)·o_k·min{C(i,j) : X_jk=1}
//	                       + w_k(i)·o_k·C(i,SP_k) ]
//	            + X_ik·Wtot_k·o_k·C(i,SP_k)
//
// where Wtot_k = Σ_x w_k(x). Reads go to the nearest replica; writes are
// shipped to the primary, which broadcasts the updated object to every
// replica. A replicator i pays the full update fan-in Wtot_k·o_k·C(i,SP_k);
// the x=i term of that sum doubles as site i's own shipping cost to the
// primary, which keeps eq. 4 consistent with eqs. 1–2 (the broadcast
// excludes the writer itself).
//
// Because link costs are positive, min_j C(i,j) over the replicators is zero
// exactly when i is itself a replicator, which lets the evaluator branch on
// the computed minimum instead of probing the bit matrix per (i,k) pair.

// Evaluator computes D for raw site-major bit matrices (GA chromosomes)
// while reusing internal buffers. It is not safe for concurrent use; create
// one per goroutine.
type Evaluator struct {
	p *Problem
	// replicators[k] is scratch for the replica list of object k.
	replicators [][]int32
	// meter, when set, is incremented once per Cost/ObjectCost call — the
	// solver runtime's central evaluation counter for budget accounting.
	meter *atomic.Int64
}

// NewEvaluator returns an evaluator for p.
func NewEvaluator(p *Problem) *Evaluator {
	return &Evaluator{
		p:           p,
		replicators: make([][]int32, p.n),
	}
}

// SetMeter attaches an evaluation counter: every subsequent Cost and
// ObjectCost call adds one to it. The counter may be shared across
// evaluators (and goroutines); nil detaches.
func (e *Evaluator) SetMeter(meter *atomic.Int64) { e.meter = meter }

// gather buckets the set bits of x into per-object replicator lists.
func (e *Evaluator) gather(x *bitset.Set) {
	n := e.p.n
	for k := range e.replicators {
		e.replicators[k] = e.replicators[k][:0]
	}
	for pos := x.NextSet(0); pos >= 0; pos = x.NextSet(pos + 1) {
		e.replicators[pos%n] = append(e.replicators[pos%n], int32(pos/n))
	}
}

// Cost returns D for the placement encoded by x. The bitset must be
// site-major with length M·N. Objects with no replica at all contribute as
// if only the primary existed (the GA repairs such chromosomes separately);
// in well-formed schemes the primary bit is always present.
func (e *Evaluator) Cost(x *bitset.Set) int64 {
	if e.meter != nil {
		e.meter.Add(1)
	}
	e.gather(x)
	var total int64
	for k := 0; k < e.p.n; k++ {
		total += e.objectCost(k, e.replicators[k])
	}
	return total
}

// ObjectCost returns V_k, the NTC attributable to object k, for the
// replicator set given as site indices. Used by AGRA, whose chromosomes
// describe a single object's replication scheme.
func (e *Evaluator) ObjectCost(k int, replicators []int32) int64 {
	if e.meter != nil {
		e.meter.Add(1)
	}
	return e.objectCost(k, replicators)
}

func (e *Evaluator) objectCost(k int, repl []int32) int64 {
	p := e.p
	sp := p.primary[k]
	ok := p.size[k]
	wTot := p.totalWrites[k]
	if len(repl) == 0 {
		// Treat as primaries-only (degenerate input).
		return p.vPrime[k]
	}
	spRow := p.dist.Row(sp)
	var total int64
	for i := 0; i < p.m; i++ {
		row := p.dist.Row(i)
		dmin := row[repl[0]]
		for _, j := range repl[1:] {
			if d := row[j]; d < dmin {
				dmin = d
				if d == 0 {
					break
				}
			}
		}
		if dmin == 0 {
			// i is a replicator: it receives every update from the primary
			// (its own updates ship to the primary via the x=i term).
			total += wTot * ok * spRow[i]
		} else {
			total += p.reads[i*p.n+k]*ok*dmin + p.writes[i*p.n+k]*ok*spRow[i]
		}
	}
	return total
}

// Cost returns the exact NTC (eq. 4) of the scheme.
func (s *Scheme) Cost() int64 {
	return NewEvaluator(s.p).Cost(s.x)
}

// ObjectCost returns V_k for object k under this scheme.
func (s *Scheme) ObjectCost(k int) int64 {
	e := NewEvaluator(s.p)
	repl := make([]int32, 0, 8)
	for i := 0; i < s.p.m; i++ {
		if s.Has(i, k) {
			repl = append(repl, int32(i))
		}
	}
	return e.ObjectCost(k, repl)
}

// CostTerms is eq. 4's D split into its three summands: the read traffic of
// non-replicators to their nearest replica, the write traffic of
// non-replicators shipping updates to the primary, and the update fan-in
// every replicator receives from the primary. ReadNTC + WriteNTC +
// UpdateNTC == D exactly.
type CostTerms struct {
	ReadNTC   int64 `json:"read_ntc"`
	WriteNTC  int64 `json:"write_ntc"`
	UpdateNTC int64 `json:"update_ntc"`
}

// Total returns the terms' sum, i.e. D.
func (t CostTerms) Total() int64 { return t.ReadNTC + t.WriteNTC + t.UpdateNTC }

// CostTerms returns the scheme's NTC broken into eq. 4's three terms — the
// per-run manifest's cost decomposition.
func (s *Scheme) CostTerms() CostTerms {
	p := s.p
	var t CostTerms
	repl := make([]int32, 0, 8)
	for k := 0; k < p.n; k++ {
		repl = repl[:0]
		for i := 0; i < p.m; i++ {
			if s.Has(i, k) {
				repl = append(repl, int32(i))
			}
		}
		sp := p.primary[k]
		ok := p.size[k]
		wTot := p.totalWrites[k]
		spRow := p.dist.Row(sp)
		for i := 0; i < p.m; i++ {
			row := p.dist.Row(i)
			dmin := int64(-1)
			for _, j := range repl {
				if d := row[j]; dmin < 0 || d < dmin {
					dmin = d
					if d == 0 {
						break
					}
				}
			}
			if dmin == 0 {
				t.UpdateNTC += wTot * ok * spRow[i]
			} else {
				if dmin < 0 {
					dmin = row[sp] // degenerate replica-free object: primary only
				}
				t.ReadNTC += p.reads[i*p.n+k] * ok * dmin
				t.WriteNTC += p.writes[i*p.n+k] * ok * spRow[i]
			}
		}
	}
	return t
}

// Savings converts a cost into the paper's quality metric:
// 100·(D_prime − D)/D_prime percent of the primaries-only NTC saved.
func (p *Problem) Savings(cost int64) float64 {
	if p.dPrime == 0 {
		return 0
	}
	return 100 * float64(p.dPrime-cost) / float64(p.dPrime)
}

// Savings returns the scheme's % NTC saving over the primaries-only
// allocation.
func (s *Scheme) Savings() float64 { return s.p.Savings(s.Cost()) }

// Benefit computes B_k(i) (eq. 5): the expected NTC reduction per storage
// unit from replicating object k at site i, judged from site i's local
// view. nearestDist must be the current C(i, SN_k(i)) — the distance from i
// to its nearest replica of k before the new replica is placed.
//
//	B_k(i) = ( R_k(i) − [ Wtot_k·o_k·C(i,SP_k) − W_k(i) ] ) / o_k
//
// where R_k(i) = r_k(i)·o_k·nearestDist is the read traffic eliminated,
// Wtot_k·o_k·C(i,SP_k) is the update fan-in the new replica starts paying,
// and W_k(i) = w_k(i)·o_k·C(i,SP_k) is the write-shipping cost site i
// already paid (it is absorbed into the fan-in, so it offsets the penalty).
func (p *Problem) Benefit(i, k int, nearestDist int64) float64 {
	ok := p.size[k]
	cSP := p.dist.At(i, p.primary[k])
	reads := p.reads[i*p.n+k] * ok * nearestDist
	fanIn := p.totalWrites[k] * ok * cSP
	own := p.writes[i*p.n+k] * ok * cSP
	return float64(reads-(fanIn-own)) / float64(ok)
}

// Estimate computes E_k(i) (eq. 6): the rapid O(M)-free replica-benefit
// estimation AGRA uses to pick deallocation victims when a transcription
// overflows a site. Higher values mean the replica is worth keeping;
// deallocate ascending.
//
//	        TotalReads_k + w_k(i) − TotalWrites_k + r_k(i)·s(i)/o_k
//	E_k(i) = ------------------------------------------------------
//	          (Σ_x C(i,x) / mean_l Σ_x C(l,x)) · ReplicaDegree_k
//
// replicaDegree must be ≥ 1 (the object is currently replicated at i).
func (p *Problem) Estimate(i, k, replicaDegree int) float64 {
	if replicaDegree < 1 {
		replicaDegree = 1
	}
	num := float64(p.totalReads[k]+p.writes[i*p.n+k]-p.totalWrites[k]) +
		float64(p.reads[i*p.n+k])*float64(p.cap[i])/float64(p.size[k])
	den := p.propWeight[i] * float64(replicaDegree)
	if den <= 0 {
		den = float64(replicaDegree)
	}
	return num / den
}
