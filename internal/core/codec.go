package core

import (
	"encoding/json"
	"fmt"
	"io"

	"drp/internal/netsim"
)

// problemJSON is the on-disk representation of a Problem. The distance
// matrix is stored row by row so instances round-trip exactly regardless of
// the topology they came from.
type problemJSON struct {
	Sites      int       `json:"sites"`
	Objects    int       `json:"objects"`
	Sizes      []int64   `json:"sizes"`
	Capacities []int64   `json:"capacities"`
	Primaries  []int     `json:"primaries"`
	Reads      [][]int64 `json:"reads"`
	Writes     [][]int64 `json:"writes"`
	Dist       [][]int64 `json:"dist"`
}

// Encode serialises the problem as JSON.
func (p *Problem) Encode(w io.Writer) error {
	dist := make([][]int64, p.m)
	for i := range dist {
		dist[i] = append([]int64(nil), p.dist.Row(i)...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(problemJSON{
		Sites:      p.m,
		Objects:    p.n,
		Sizes:      p.size,
		Capacities: p.cap,
		Primaries:  p.primary,
		Reads:      p.ReadMatrix(),
		Writes:     p.WriteMatrix(),
		Dist:       dist,
	})
}

// ReadProblem parses a JSON-encoded problem.
func ReadProblem(r io.Reader) (*Problem, error) {
	var pj problemJSON
	if err := json.NewDecoder(r).Decode(&pj); err != nil {
		return nil, fmt.Errorf("core: decode problem: %w", err)
	}
	// Dimension guards come before any allocation or matrix indexing so
	// malformed input (fuzzers, truncated files) yields errors, not panics.
	if pj.Sites < 1 {
		return nil, fmt.Errorf("core: problem header declares %d sites", pj.Sites)
	}
	if pj.Objects != len(pj.Sizes) {
		return nil, fmt.Errorf("core: problem header declares %d objects, sizes list has %d", pj.Objects, len(pj.Sizes))
	}
	if len(pj.Dist) != pj.Sites {
		return nil, fmt.Errorf("core: distance matrix has %d rows, want %d", len(pj.Dist), pj.Sites)
	}
	// Every row length must be validated up front: filling the matrix below
	// indexes pj.Dist[j][i] for j > i, i.e. rows not yet visited.
	for i, row := range pj.Dist {
		if len(row) != pj.Sites {
			return nil, fmt.Errorf("core: distance row %d has %d entries, want %d", i, len(row), pj.Sites)
		}
	}
	dm := netsim.NewDistMatrix(pj.Sites)
	for i, row := range pj.Dist {
		for j, v := range row {
			if i == j {
				if v != 0 {
					return nil, fmt.Errorf("core: non-zero self-distance %d at site %d", v, i)
				}
				continue
			}
			if i < j {
				if v != pj.Dist[j][i] {
					return nil, fmt.Errorf("core: asymmetric distance at (%d,%d)", i, j)
				}
				dm.Set(i, j, v)
			}
		}
	}
	if err := dm.Validate(); err != nil {
		return nil, err
	}
	return NewProblem(Config{
		Sizes:      pj.Sizes,
		Capacities: pj.Capacities,
		Primaries:  pj.Primaries,
		Reads:      pj.Reads,
		Writes:     pj.Writes,
		Dist:       dm,
	})
}

// schemeJSON stores a replication scheme as per-object replicator lists.
type schemeJSON struct {
	Replicators [][]int `json:"replicators"`
}

// Encode serialises the scheme as JSON (per-object replicator lists).
func (s *Scheme) Encode(w io.Writer) error {
	repl := make([][]int, s.p.n)
	for k := range repl {
		repl[k] = s.Replicators(k)
	}
	return json.NewEncoder(w).Encode(schemeJSON{Replicators: repl})
}

// ReadScheme parses a JSON-encoded scheme against problem p.
func ReadScheme(p *Problem, r io.Reader) (*Scheme, error) {
	var sj schemeJSON
	if err := json.NewDecoder(r).Decode(&sj); err != nil {
		return nil, fmt.Errorf("core: decode scheme: %w", err)
	}
	if len(sj.Replicators) != p.n {
		return nil, fmt.Errorf("core: scheme has %d objects, want %d", len(sj.Replicators), p.n)
	}
	s := NewScheme(p)
	for k, sites := range sj.Replicators {
		for _, i := range sites {
			if i < 0 || i >= p.m {
				return nil, fmt.Errorf("core: object %d replicated at out-of-range site %d", k, i)
			}
			if i == p.primary[k] {
				continue // already placed by NewScheme
			}
			if err := s.Add(i, k); err != nil {
				return nil, fmt.Errorf("core: object %d at site %d: %w", k, i, err)
			}
		}
	}
	return s, nil
}
