package core

import (
	"errors"
	"fmt"

	"drp/internal/bitset"
)

// Scheme is a mutable replication scheme: the boolean M×N matrix X of the
// paper, with the invariants enforced at every mutation:
//
//   - X[SP_k][k] = 1 (primary copies can never be dropped), and
//   - Σ_k X[i][k]·o_k ≤ s(i) (site capacity).
//
// Bits are stored site-major to match the GRA chromosome encoding: bit
// i·N+k is X[i][k].
type Scheme struct {
	p    *Problem
	x    *bitset.Set
	used []int64 // storage consumed per site
}

// Mutation errors callers may want to match.
var (
	ErrCapacity  = errors.New("core: replica does not fit site capacity")
	ErrPrimary   = errors.New("core: primary copies cannot be removed")
	ErrDuplicate = errors.New("core: replica already present")
	ErrAbsent    = errors.New("core: replica not present")
)

// NewScheme returns the initial allocation: every object only at its
// primary site.
func NewScheme(p *Problem) *Scheme {
	s := &Scheme{
		p:    p,
		x:    bitset.New(p.m * p.n),
		used: make([]int64, p.m),
	}
	for k := 0; k < p.n; k++ {
		sp := p.primary[k]
		s.x.Set(sp*p.n + k)
		s.used[sp] += p.size[k]
	}
	return s
}

// SchemeFromBits builds a Scheme from a raw site-major bitset (for example a
// GA chromosome). The bitset is cloned. An error is returned if a primary
// bit is missing or a site exceeds its capacity.
func SchemeFromBits(p *Problem, x *bitset.Set) (*Scheme, error) {
	if x.Len() != p.m*p.n {
		return nil, fmt.Errorf("core: bitset length %d, want %d", x.Len(), p.m*p.n)
	}
	s := &Scheme{p: p, x: x.Clone(), used: make([]int64, p.m)}
	for i := 0; i < p.m; i++ {
		for k := s.x.NextSet(i * p.n); k >= 0 && k < (i+1)*p.n; k = s.x.NextSet(k + 1) {
			s.used[i] += p.size[k-i*p.n]
		}
		if s.used[i] > p.cap[i] {
			return nil, fmt.Errorf("core: site %d uses %d of %d: %w", i, s.used[i], p.cap[i], ErrCapacity)
		}
	}
	for k := 0; k < p.n; k++ {
		if !s.x.Test(p.primary[k]*p.n + k) {
			return nil, fmt.Errorf("core: object %d missing primary copy at site %d", k, p.primary[k])
		}
	}
	return s, nil
}

// Problem returns the instance this scheme belongs to.
func (s *Scheme) Problem() *Problem { return s.p }

// Has reports whether site i holds a replica of object k.
func (s *Scheme) Has(i, k int) bool { return s.x.Test(i*s.p.n + k) }

// Used returns the storage consumed at site i.
func (s *Scheme) Used(i int) int64 { return s.used[i] }

// Free returns the remaining capacity b(i) at site i.
func (s *Scheme) Free(i int) int64 { return s.p.cap[i] - s.used[i] }

// Add places a replica of object k at site i.
func (s *Scheme) Add(i, k int) error {
	if s.Has(i, k) {
		return ErrDuplicate
	}
	if s.Free(i) < s.p.size[k] {
		return ErrCapacity
	}
	s.x.Set(i*s.p.n + k)
	s.used[i] += s.p.size[k]
	return nil
}

// Remove drops the replica of object k from site i. Primary copies cannot
// be removed.
func (s *Scheme) Remove(i, k int) error {
	if !s.Has(i, k) {
		return ErrAbsent
	}
	if s.p.primary[k] == i {
		return ErrPrimary
	}
	s.x.Clear(i*s.p.n + k)
	s.used[i] -= s.p.size[k]
	return nil
}

// Replicators returns the sites holding object k, ascending. The primary is
// always among them.
func (s *Scheme) Replicators(k int) []int {
	var out []int
	for i := 0; i < s.p.m; i++ {
		if s.Has(i, k) {
			out = append(out, i)
		}
	}
	return out
}

// ReplicaDegree returns |R_k|, the number of replicas of object k.
func (s *Scheme) ReplicaDegree(k int) int {
	deg := 0
	for i := 0; i < s.p.m; i++ {
		if s.Has(i, k) {
			deg++
		}
	}
	return deg
}

// TotalReplicas returns the number of replicas beyond the N primary copies
// — the "number of replicas created" the paper plots in Figures 1(b) and
// 1(d).
func (s *Scheme) TotalReplicas() int {
	return s.x.Count() - s.p.n
}

// Bits returns a clone of the underlying site-major bit matrix.
func (s *Scheme) Bits() *bitset.Set { return s.x.Clone() }

// Clone returns a deep copy.
func (s *Scheme) Clone() *Scheme {
	return &Scheme{
		p:    s.p,
		x:    s.x.Clone(),
		used: append([]int64(nil), s.used...),
	}
}

// Equal reports whether two schemes place identical replicas.
func (s *Scheme) Equal(other *Scheme) bool {
	return s.p == other.p && s.x.Equal(other.x)
}

// Validate re-checks both DRP constraints from scratch. A healthy Scheme
// always passes; it exists to catch programming errors in algorithm code
// and for use in tests.
func (s *Scheme) Validate() error {
	usage := make([]int64, s.p.m)
	for i := 0; i < s.p.m; i++ {
		for k := 0; k < s.p.n; k++ {
			if s.Has(i, k) {
				usage[i] += s.p.size[k]
			}
		}
		if usage[i] != s.used[i] {
			return fmt.Errorf("core: site %d tracked usage %d != actual %d", i, s.used[i], usage[i])
		}
		if usage[i] > s.p.cap[i] {
			return fmt.Errorf("core: site %d over capacity: %d > %d", i, usage[i], s.p.cap[i])
		}
	}
	for k := 0; k < s.p.n; k++ {
		if !s.Has(s.p.primary[k], k) {
			return fmt.Errorf("core: object %d lost its primary copy", k)
		}
	}
	return nil
}
