package core

import (
	"math"
	"testing"
)

func TestSchemeStats(t *testing.T) {
	p := fixture(t)
	s := NewScheme(p)
	st := s.Stats()
	if st.Replicas != 0 {
		t.Fatalf("primaries-only replicas = %d", st.Replicas)
	}
	if st.MeanDegree != 1 || st.MaxDegree != 1 {
		t.Fatalf("primaries-only degrees: mean %v max %d", st.MeanDegree, st.MaxDegree)
	}
	// Storage: primaries use o_0=2 at site 0 and o_1=3 at site 2 of 15
	// total capacity.
	if st.StorageUsed != 5 || st.StorageCapacity != 15 {
		t.Fatalf("storage %d/%d", st.StorageUsed, st.StorageCapacity)
	}
	if math.Abs(st.Utilization-5.0/15) > 1e-12 {
		t.Fatalf("utilization %v", st.Utilization)
	}

	if err := s.Add(1, 0); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Replicas != 1 || st.MaxDegree != 2 {
		t.Fatalf("after add: replicas %d max degree %d", st.Replicas, st.MaxDegree)
	}
	if math.Abs(st.MeanDegree-1.5) > 1e-12 {
		t.Fatalf("mean degree %v, want 1.5", st.MeanDegree)
	}
	if math.Abs(st.SiteUtilization[1]-2.0/5) > 1e-12 {
		t.Fatalf("site 1 utilization %v", st.SiteUtilization[1])
	}
}

func TestDiffAndMigrationCost(t *testing.T) {
	p := fixture(t)
	old := NewScheme(p)
	next := NewScheme(p)
	if err := next.Add(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := next.Add(1, 1); err != nil {
		t.Fatal(err)
	}

	added, removed := old.Diff(next)
	if len(added) != 2 || len(removed) != 0 {
		t.Fatalf("diff: %d added, %d removed", len(added), len(removed))
	}
	// Migration: object 0 fetched from its primary site 0 (C=2, size 2),
	// object 1 from primary site 2 (C=1, size 3) → 4 + 3 = 7.
	if got := old.MigrationCost(next); got != 7 {
		t.Fatalf("migration cost %d, want 7", got)
	}

	// Reverse direction: removals only, free.
	back, gone := next.Diff(old)
	if len(back) != 0 || len(gone) != 2 {
		t.Fatalf("reverse diff: %d added, %d removed", len(back), len(gone))
	}
	if got := next.MigrationCost(old); got != 0 {
		t.Fatalf("removal-only migration cost %d, want 0", got)
	}

	// Identical schemes: empty diff.
	a, r := next.Diff(next.Clone())
	if len(a)+len(r) != 0 {
		t.Fatal("self-diff not empty")
	}
}

func TestDiffPanicsOnShapeMismatch(t *testing.T) {
	p := fixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	other := NewScheme(p)
	// Build a different-shape problem.
	small, err := NewProblem(Config{
		Sizes:      []int64{1},
		Capacities: []int64{1, 1},
		Primaries:  []int{0},
		Reads:      [][]int64{{1}, {1}},
		Writes:     [][]int64{{0}, {0}},
		Dist:       twoSiteDist(),
	})
	if err != nil {
		t.Fatal(err)
	}
	NewScheme(small).Diff(other)
}
