package core

import (
	"testing"

	"drp/internal/netsim"
)

// rankFixture builds a 5-site instance on a line metric (unit hops, so
// C(i,j) = |i-j|) with one object replicated at {0, 2, 3, 4}.
func rankFixture(t *testing.T) *Problem {
	t.Helper()
	dm := netsim.NewDistMatrix(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			dm.Set(i, j, int64(j-i))
		}
	}
	p, err := NewProblem(Config{
		Sizes:      []int64{1},
		Capacities: []int64{5, 5, 5, 5, 5},
		Primaries:  []int{0},
		Reads:      [][]int64{{1}, {1}, {1}, {1}, {1}},
		Writes:     [][]int64{{0}, {0}, {0}, {0}, {0}},
		Dist:       dm,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRankReplicasOrdersByCostThenIndex(t *testing.T) {
	p := rankFixture(t)
	replicas := []int{4, 0, 3, 2}
	// From site 1: C = {0:1, 2:1, 3:2, 4:3}; the 0/2 tie breaks on the
	// lower site index.
	got := RankReplicas(p, 1, replicas, nil)
	want := []int{0, 2, 3, 4}
	if !equalInts(got, want) {
		t.Fatalf("rank from site 1 = %v, want %v", got, want)
	}
	// Input order must not matter.
	got = RankReplicas(p, 1, []int{2, 3, 0, 4}, nil)
	if !equalInts(got, want) {
		t.Fatalf("rank is input-order sensitive: %v", got)
	}
}

func TestRankReplicasSkipsDepartedSites(t *testing.T) {
	p := rankFixture(t)
	replicas := []int{0, 2, 3, 4}
	// Sites 0 and 3 have left the view: the ranking must skip them
	// entirely, not push them to the back.
	view := map[int]bool{1: true, 2: true, 4: true}
	got := RankReplicas(p, 1, replicas, func(j int) bool { return view[j] })
	want := []int{2, 4}
	if !equalInts(got, want) {
		t.Fatalf("view-masked rank = %v, want %v", got, want)
	}
	// The order over surviving sites is identical to ranking them alone:
	// departures never reshuffle survivors.
	alone := RankReplicas(p, 1, []int{2, 4}, nil)
	if !equalInts(got, alone) {
		t.Fatalf("masking reshuffled survivors: %v vs %v", got, alone)
	}
	// Every site departed: the ranking is empty, not a panic.
	if got := RankReplicas(p, 1, replicas, func(int) bool { return false }); len(got) != 0 {
		t.Fatalf("empty view ranked %v", got)
	}
}

func TestRankReplicasDropsOutOfRangeSites(t *testing.T) {
	p := rankFixture(t)
	got := RankReplicas(p, 0, []int{3, -1, 99, 2}, nil)
	if !equalInts(got, []int{2, 3}) {
		t.Fatalf("rank with junk sites = %v, want [2 3]", got)
	}
}

func TestRankReplicasMatchesNearestTable(t *testing.T) {
	p := fixture(t)
	s := NewScheme(p)
	if err := s.Add(1, 0); err != nil {
		t.Fatal(err)
	}
	nt := NewNearestTable(s)
	for k := 0; k < p.Objects(); k++ {
		repl := s.Replicators(k)
		for i := 0; i < p.Sites(); i++ {
			ranked := RankReplicas(p, i, repl, nil)
			if len(ranked) == 0 {
				t.Fatalf("object %d has no ranked replicas", k)
			}
			// The table's SN_k(i) must cost the same as the top-ranked
			// replica (the table may break ties differently, but never by
			// distance).
			if got, want := p.Cost(i, nt.Nearest(i, k)), p.Cost(i, ranked[0]); got != want {
				t.Fatalf("site %d object %d: table nearest costs %d, rank head costs %d", i, k, got, want)
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
