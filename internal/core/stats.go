package core

// SchemeStats summarises a replication scheme for operators and reports.
type SchemeStats struct {
	// Replicas counts placements beyond the primaries.
	Replicas int
	// MeanDegree and MaxDegree describe per-object replication (degree
	// includes the primary copy, so both are ≥ 1).
	MeanDegree float64
	MaxDegree  int
	// StorageUsed and StorageCapacity aggregate over all sites;
	// Utilization is their ratio.
	StorageUsed     int64
	StorageCapacity int64
	Utilization     float64
	// SiteUtilization is the per-site used/capacity fraction (1 for a full
	// site; a zero-capacity site counts as fully utilised).
	SiteUtilization []float64
}

// Stats computes summary statistics of the scheme.
func (s *Scheme) Stats() SchemeStats {
	p := s.p
	st := SchemeStats{
		Replicas:        s.TotalReplicas(),
		SiteUtilization: make([]float64, p.m),
	}
	totalDegree := 0
	for k := 0; k < p.n; k++ {
		deg := s.ReplicaDegree(k)
		totalDegree += deg
		if deg > st.MaxDegree {
			st.MaxDegree = deg
		}
	}
	st.MeanDegree = float64(totalDegree) / float64(p.n)
	for i := 0; i < p.m; i++ {
		st.StorageUsed += s.used[i]
		st.StorageCapacity += p.cap[i]
		if p.cap[i] > 0 {
			st.SiteUtilization[i] = float64(s.used[i]) / float64(p.cap[i])
		} else {
			st.SiteUtilization[i] = 1
		}
	}
	if st.StorageCapacity > 0 {
		st.Utilization = float64(st.StorageUsed) / float64(st.StorageCapacity)
	}
	return st
}

// Placement identifies one (site, object) replica.
type Placement struct {
	Site, Object int
}

// Diff reports the placements present in next but not in s (added) and
// present in s but not in next (removed) — the migration plan for moving
// the network from one scheme to the other. Both schemes must belong to
// problems of identical shape.
func (s *Scheme) Diff(next *Scheme) (added, removed []Placement) {
	if s.p.m != next.p.m || s.p.n != next.p.n {
		panic("core: Diff across problems of different shape")
	}
	for i := 0; i < s.p.m; i++ {
		for k := 0; k < s.p.n; k++ {
			has, will := s.Has(i, k), next.Has(i, k)
			switch {
			case will && !has:
				added = append(added, Placement{Site: i, Object: k})
			case has && !will:
				removed = append(removed, Placement{Site: i, Object: k})
			}
		}
	}
	return added, removed
}

// MigrationCost returns the transfer cost of realising next from s: every
// added replica is fetched from the nearest site currently holding the
// object. Removals are free.
func (s *Scheme) MigrationCost(next *Scheme) int64 {
	added, _ := s.Diff(next)
	if len(added) == 0 {
		return 0
	}
	nt := NewNearestTable(s)
	var total int64
	for _, pl := range added {
		total += s.p.size[pl.Object] * nt.Dist(pl.Site, pl.Object)
	}
	return total
}
