package core_test

// Property-based tests (testing/quick) over the core data structures:
// arbitrary valid op sequences never break Scheme invariants, and the
// serialisation layer round-trips arbitrary generated instances.

import (
	"bytes"
	"testing"
	"testing/quick"

	"drp/internal/core"
	"drp/internal/workload"
	"drp/internal/xrand"
)

// TestSchemeInvariantsUnderRandomOps drives a random Add/Remove sequence
// and re-validates the full invariant set after every step batch.
func TestSchemeInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed uint64) bool {
		p, err := workload.Generate(workload.NewSpec(6, 8, 0.1, 0.3), seed%64+1)
		if err != nil {
			return false
		}
		rng := xrand.New(seed)
		s := core.NewScheme(p)
		for step := 0; step < 200; step++ {
			i, k := rng.Intn(p.Sites()), rng.Intn(p.Objects())
			if rng.Bool(0.5) {
				_ = s.Add(i, k)
			} else {
				_ = s.Remove(i, k)
			}
		}
		if s.Validate() != nil {
			return false
		}
		// Cost must stay within [optimum-ish bounds]: at least 0, and the
		// savings may be negative but the scheme cost is non-negative.
		if s.Cost() < 0 {
			return false
		}
		// Round-trip through raw bits preserves everything.
		rebuilt, err := core.SchemeFromBits(p, s.Bits())
		if err != nil {
			return false
		}
		return rebuilt.Equal(s) && rebuilt.Cost() == s.Cost()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCostMonotoneUnderZeroWrites: with no writes anywhere, adding any
// replica can never increase the cost (reads only get closer).
func TestCostMonotoneUnderZeroWrites(t *testing.T) {
	f := func(seed uint64) bool {
		p, err := workload.Generate(workload.NewSpec(6, 6, 0, 0.5), seed%64+1)
		if err != nil {
			return false
		}
		rng := xrand.New(seed)
		s := core.NewScheme(p)
		cost := s.Cost()
		for step := 0; step < 40; step++ {
			i, k := rng.Intn(p.Sites()), rng.Intn(p.Objects())
			if s.Add(i, k) != nil {
				continue
			}
			next := s.Cost()
			if next > cost {
				return false
			}
			cost = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestProblemRoundTripsExactly: generated instances survive JSON encoding
// bit-for-bit in every field the cost model reads.
func TestProblemRoundTripsExactly(t *testing.T) {
	f := func(seed uint64) bool {
		p, err := workload.Generate(workload.NewSpec(5, 7, 0.07, 0.25), seed%128+1)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if p.Encode(&buf) != nil {
			return false
		}
		p2, err := core.ReadProblem(&buf)
		if err != nil {
			return false
		}
		if p2.DPrime() != p.DPrime() || p2.TotalObjectSize() != p.TotalObjectSize() {
			return false
		}
		for i := 0; i < p.Sites(); i++ {
			if p2.Capacity(i) != p.Capacity(i) {
				return false
			}
			for j := 0; j < p.Sites(); j++ {
				if p2.Cost(i, j) != p.Cost(i, j) {
					return false
				}
			}
			for k := 0; k < p.Objects(); k++ {
				if p2.Reads(i, k) != p.Reads(i, k) || p2.Writes(i, k) != p.Writes(i, k) {
					return false
				}
			}
		}
		for k := 0; k < p.Objects(); k++ {
			if p2.Size(k) != p.Size(k) || p2.Primary(k) != p.Primary(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSavingsConsistency: Savings is a strictly decreasing function of
// cost and equals zero exactly at D'.
func TestSavingsConsistency(t *testing.T) {
	p, err := workload.Generate(workload.NewSpec(5, 6, 0.05, 0.3), 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Savings(p.DPrime()) != 0 {
		t.Fatal("savings at D' not zero")
	}
	if p.Savings(p.DPrime()/2) <= p.Savings(p.DPrime()) {
		t.Fatal("savings not decreasing in cost")
	}
	if p.Savings(2*p.DPrime()) >= 0 {
		t.Fatal("worse-than-D' cost did not yield negative savings")
	}
}
