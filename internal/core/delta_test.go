package core_test

import (
	"testing"

	"drp/internal/core"
	"drp/internal/workload"
	"drp/internal/xrand"
)

func TestDeltaEvaluatorMatchesFullCost(t *testing.T) {
	p, err := workload.Generate(workload.NewSpec(10, 12, 0.05, 0.25), 41)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewScheme(p)
	d := core.NewDeltaEvaluator(s)
	if d.Cost() != p.DPrime() {
		t.Fatalf("initial delta cost %d != D' %d", d.Cost(), p.DPrime())
	}

	rng := xrand.New(7)
	for trial := 0; trial < 300; trial++ {
		i, k := rng.Intn(p.Sites()), rng.Intn(p.Objects())
		if s.Has(i, k) {
			delta, ok := d.RemoveDelta(i, k)
			if p.Primary(k) == i {
				if ok {
					t.Fatal("RemoveDelta allowed a primary removal")
				}
				continue
			}
			if !ok {
				t.Fatal("RemoveDelta rejected a valid removal")
			}
			before := d.Cost()
			if err := d.Remove(i, k); err != nil {
				t.Fatal(err)
			}
			if d.Cost() != before+delta {
				t.Fatalf("remove delta %d inconsistent: %d -> %d", delta, before, d.Cost())
			}
		} else {
			delta, ok := d.AddDelta(i, k)
			if !ok {
				continue // capacity
			}
			before := d.Cost()
			if err := d.Add(i, k); err != nil {
				t.Fatal(err)
			}
			if d.Cost() != before+delta {
				t.Fatalf("add delta %d inconsistent: %d -> %d", delta, before, d.Cost())
			}
		}
		if got, want := d.Cost(), s.Cost(); got != want {
			t.Fatalf("trial %d: delta cost %d != full cost %d", trial, got, want)
		}
	}
}

func TestDeltaEvaluatorPredictionsWithoutMutation(t *testing.T) {
	p, err := workload.Generate(workload.NewSpec(8, 10, 0.05, 0.3), 43)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewScheme(p)
	d := core.NewDeltaEvaluator(s)
	// Probing must not change state.
	for i := 0; i < p.Sites(); i++ {
		for k := 0; k < p.Objects(); k++ {
			d.AddDelta(i, k)
			d.RemoveDelta(i, k)
		}
	}
	if d.Cost() != p.DPrime() || s.TotalReplicas() != 0 {
		t.Fatal("probing mutated the evaluator state")
	}
	// A predicted add delta must match the actual cost difference.
	for i := 0; i < p.Sites(); i++ {
		if delta, ok := d.AddDelta(i, 0); ok {
			clone := s.Clone()
			if err := clone.Add(i, 0); err != nil {
				t.Fatal(err)
			}
			if want := clone.Cost() - s.Cost(); delta != want {
				t.Fatalf("AddDelta(%d,0) = %d, want %d", i, delta, want)
			}
		}
	}
}
