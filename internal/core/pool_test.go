package core

import (
	"testing"

	"drp/internal/bitset"
	"drp/internal/netsim"
	"drp/internal/xrand"
)

// poolProblem builds a pseudo-random m×n instance plus a batch of raw
// chromosomes for it (the evaluator accepts any placement matrix, so the
// batch needs no constraint repair).
func poolProblem(t testing.TB, m, n, batch int) (*Problem, []*bitset.Set) {
	t.Helper()
	rng := xrand.New(42)
	dm := netsim.NewDistMatrix(m)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			dm.Set(i, j, int64(rng.IntRange(1, 20)))
		}
	}
	cfg := Config{
		Sizes:      make([]int64, n),
		Capacities: make([]int64, m),
		Primaries:  make([]int, n),
		Reads:      make([][]int64, m),
		Writes:     make([][]int64, m),
		Dist:       dm,
	}
	for k := 0; k < n; k++ {
		cfg.Sizes[k] = int64(rng.IntRange(1, 5))
		cfg.Primaries[k] = rng.Intn(m)
	}
	for i := 0; i < m; i++ {
		cfg.Capacities[i] = 1 << 20
		cfg.Reads[i] = make([]int64, n)
		cfg.Writes[i] = make([]int64, n)
		for k := 0; k < n; k++ {
			cfg.Reads[i][k] = int64(rng.IntRange(0, 30))
			cfg.Writes[i][k] = int64(rng.IntRange(0, 5))
		}
	}
	p, err := NewProblem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]*bitset.Set, batch)
	for c := range xs {
		bits := bitset.New(m * n)
		for k := 0; k < n; k++ {
			bits.Set(p.Primary(k)*n + k)
		}
		for i := 0; i < bits.Len(); i++ {
			if rng.Bool(0.2) {
				bits.Set(i)
			}
		}
		xs[c] = bits
	}
	return p, xs
}

func TestEvalPoolCostsMatchSerial(t *testing.T) {
	p, xs := poolProblem(t, 8, 10, 37)
	serial := NewEvaluator(p)
	want := make([]int64, len(xs))
	for i, x := range xs {
		want[i] = serial.Cost(x)
	}
	for _, par := range []int{1, 2, 8, 64} {
		got := NewEvalPool(p, par).Costs(xs)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("par=%d: cost[%d] = %d, want %d", par, i, got[i], want[i])
			}
		}
	}
}

func TestEvalPoolWorkerResolution(t *testing.T) {
	p, _ := poolProblem(t, 3, 3, 1)
	if w := NewEvalPool(p, 3).Workers(); w != 3 {
		t.Fatalf("explicit parallelism resolved to %d workers", w)
	}
	if w := NewEvalPool(p, 1).Workers(); w != 1 {
		t.Fatalf("serial pool has %d workers", w)
	}
	if NewEvalPool(p, 0).Workers() < 1 {
		t.Fatal("GOMAXPROCS pool has no workers")
	}
}

// TestEvalPoolHammer pushes many batches through a wide pool; it exists to
// be run under -race, where any sharing of evaluator scratch state between
// workers would be reported.
func TestEvalPoolHammer(t *testing.T) {
	p, xs := poolProblem(t, 8, 10, 64)
	pool := NewEvalPool(p, 8)
	want := pool.Costs(xs)
	for round := 0; round < 20; round++ {
		got := pool.Costs(xs)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: cost[%d] drifted", round, i)
			}
		}
	}
}
