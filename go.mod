module drp

go 1.22
